package tcptransport

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"hypercube/internal/antientropy"
	"hypercube/internal/liveness"
	"hypercube/internal/msg"
	"hypercube/internal/obs"
	"hypercube/internal/rtt"
	"hypercube/internal/sampling"
	"hypercube/internal/wire"
)

// Codec selects the outbound frame payload encoding. Inbound frames are
// always auto-detected from the frame header, so nodes running different
// codecs interoperate in both directions.
type Codec uint8

const (
	// CodecBinary is the hand-rolled zero-alloc binary codec
	// (internal/wire): versioned, canonical, multi-envelope frames. The
	// default.
	CodecBinary Codec = iota
	// CodecGob is the legacy reflection-based gob codec, one envelope
	// per frame. Kept for one release as a fallback (-codec gob).
	CodecGob
)

func (c Codec) String() string {
	if c == CodecGob {
		return "gob"
	}
	return "binary"
}

// Config tunes the reliable-delivery layer. The zero value is usable:
// every field falls back to the default documented on it.
//
// The paper's correctness argument (Theorems 1–2) assumes reliable
// message passing; over real networks that assumption must be earned.
// Each node therefore keeps one bounded outbound queue per peer,
// drained by a dedicated writer goroutine that dials on demand,
// redials on stale connections, and retries failed deliveries with
// exponential backoff plus jitter. Messages that exhaust their
// attempts are dead-lettered and surface in msg.Counters as Dropped.
type Config struct {
	// MaxAttempts is the number of delivery attempts per envelope
	// (dial + write counts as one attempt). Default 5.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// subsequent retry. Default 10ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Default 1s.
	MaxBackoff time.Duration
	// DialTimeout bounds each TCP dial. Default 5s.
	DialTimeout time.Duration
	// QueueLimit bounds each per-peer outbound queue; envelopes that
	// would overflow it are dead-lettered. Default 4096.
	QueueLimit int
	// PollInterval is AwaitStatus's polling period. Default 20ms.
	PollInterval time.Duration
	// MaxFrameBytes bounds the payload of one inbound wire frame; a peer
	// declaring a bigger frame is disconnected before the payload is
	// read. Default 1 MiB.
	MaxFrameBytes int
	// ReadIdleTimeout bounds how long an inbound connection may sit
	// without completing a frame before it is closed (the remote writer
	// redials on demand). Default 2m.
	ReadIdleTimeout time.Duration
	// WriteTimeout bounds each outbound frame write; a stalled peer
	// fails the attempt into the normal retry path instead of wedging
	// the writer goroutine. Default 10s.
	WriteTimeout time.Duration
	// DecodeErrorBudget is how many malformed frames one inbound
	// connection may deliver before it is disconnected. Default 8.
	DecodeErrorBudget int
	// InboundRate caps envelopes accepted per second on one inbound
	// connection (token bucket; excess reads stall, letting TCP
	// backpressure the sender). Default 2000.
	InboundRate float64
	// InboundBurst is the token-bucket depth for InboundRate.
	// Default 4000.
	InboundBurst int
	// Codec selects the outbound payload encoding. Default CodecBinary;
	// inbound frames are auto-detected regardless.
	Codec Codec
	// FlushDelay is how long a peer's writer lingers after its first
	// pending envelope to coalesce more envelopes into the same frame
	// (binary codec only; each frame stays within MaxFrameBytes and
	// wire.MaxBatch). 0 — the default — still drains whatever is already
	// queued into one frame, it just never waits for more.
	FlushDelay time.Duration
	// Faults optionally injects transport failures (tests and
	// experiments). Nil disables injection.
	Faults *Faults
	// Liveness enables the failure detector: a background goroutine
	// probes table and reverse neighbors, declares unresponsive peers
	// failed, and drives Machine.Tick for join timeouts and repair.
	// Nil disables it.
	Liveness *liveness.Config
	// AntiEntropy enables periodic anti-entropy rounds: a background
	// ticker audits the table and runs push-pull digest exchanges with
	// rotating neighbors, repairing divergence (e.g. after a partition
	// heals). Nil disables it.
	AntiEntropy *antientropy.Config
	// RTT enables adaptive per-peer timeouts: one shared Jacobson/Karels
	// estimator is fed by liveness probe round trips and protocol
	// request/reply latencies, drives per-target probe deadlines and
	// retransmission timers, and flags persistently slow peers degraded
	// (deprioritized by anti-entropy partner choice and the sampling
	// validator). Nil keeps the fixed timeouts.
	RTT *rtt.Config
	// Sampling enables the byzantine-resistant gossip peer-sampling
	// layer: a background ticker runs Brahms-style push-pull rounds, and
	// the machine's gateway selection plus the anti-entropy engine's peer
	// choice gain the sampled-peer fallback. Nil disables it.
	Sampling *sampling.Config
	// Sink, when non-nil, receives every protocol event the node emits,
	// stamped with wall time since node start (e.g. an obs.JSONL trace
	// file). Metrics are collected regardless; the sink is for traces.
	// The sink must be safe for concurrent use.
	Sink obs.Sink
	// TraceRing, when positive, keeps the newest TraceRing events in an
	// in-memory ring drained via Node.DrainTrace and GET /trace on the
	// admin API. 0 disables the ring.
	TraceRing int
	// TraceSample, when positive, enables causal tracing: every protocol
	// operation root (join start, probe round, anti-entropy round,
	// sampling round) is head-sampled at this rate, span IDs come from
	// crypto/rand, and sampled context rides the wire (payload v2) so
	// downstream nodes continue the trace. 0 disables tracing entirely;
	// the node then ignores inbound contexts and emits v1 payloads — an
	// opaque hop.
	TraceSample float64
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 4096
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 20 * time.Millisecond
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = 1 << 20
	}
	if c.ReadIdleTimeout <= 0 {
		c.ReadIdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.DecodeErrorBudget <= 0 {
		c.DecodeErrorBudget = 8
	}
	if c.InboundRate <= 0 {
		c.InboundRate = 2000
	}
	if c.InboundBurst <= 0 {
		c.InboundBurst = 4000
	}
	return c
}

// Option adjusts a node's delivery Config at start time.
type Option func(*Config)

// WithConfig replaces the whole delivery configuration.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithMaxAttempts sets the delivery attempts per envelope.
func WithMaxAttempts(n int) Option {
	return func(c *Config) { c.MaxAttempts = n }
}

// WithBackoff sets the base and maximum retry backoff.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Config) { c.BaseBackoff, c.MaxBackoff = base, max }
}

// WithDialTimeout sets the per-dial timeout.
func WithDialTimeout(d time.Duration) Option {
	return func(c *Config) { c.DialTimeout = d }
}

// WithQueueLimit sets the per-peer outbound queue bound.
func WithQueueLimit(n int) Option {
	return func(c *Config) { c.QueueLimit = n }
}

// WithPollInterval sets AwaitStatus's polling period.
func WithPollInterval(d time.Duration) Option {
	return func(c *Config) { c.PollInterval = d }
}

// WithCodec selects the outbound payload encoding.
func WithCodec(codec Codec) Option {
	return func(c *Config) { c.Codec = codec }
}

// WithFlushDelay sets how long a peer's writer lingers to coalesce more
// envelopes into one frame.
func WithFlushDelay(d time.Duration) Option {
	return func(c *Config) { c.FlushDelay = d }
}

// WithFaults installs a fault injector.
func WithFaults(f *Faults) Option {
	return func(c *Config) { c.Faults = f }
}

// WithLiveness enables the failure detector with the given tuning.
func WithLiveness(lc liveness.Config) Option {
	return func(c *Config) { c.Liveness = &lc }
}

// WithRTT enables adaptive per-peer timeouts backed by a shared RTT
// estimator with the given tuning.
func WithRTT(rc rtt.Config) Option {
	return func(c *Config) { c.RTT = &rc }
}

// WithSampling enables the gossip peer-sampling layer with the given
// tuning.
func WithSampling(sc sampling.Config) Option {
	return func(c *Config) { c.Sampling = &sc }
}

// WithAntiEntropy enables periodic anti-entropy rounds with the given
// tuning.
func WithAntiEntropy(ac antientropy.Config) Option {
	return func(c *Config) { c.AntiEntropy = &ac }
}

// WithSink streams every protocol event the node emits to s (e.g. an
// obs.JSONL trace file). s must be safe for concurrent use.
func WithSink(s obs.Sink) Option {
	return func(c *Config) { c.Sink = s }
}

// WithTraceRing keeps the newest capacity events in memory, drained via
// Node.DrainTrace or GET /trace on the admin API.
func WithTraceRing(capacity int) Option {
	return func(c *Config) { c.TraceRing = capacity }
}

// WithTraceSample enables causal tracing with the given head-sampling
// rate (1 traces every operation, 0 disables tracing).
func WithTraceSample(rate float64) Option {
	return func(c *Config) { c.TraceSample = rate }
}

// WithMaxFrameBytes bounds inbound wire-frame payloads.
func WithMaxFrameBytes(n int) Option {
	return func(c *Config) { c.MaxFrameBytes = n }
}

// WithReadIdleTimeout bounds how long an inbound connection may idle.
func WithReadIdleTimeout(d time.Duration) Option {
	return func(c *Config) { c.ReadIdleTimeout = d }
}

// WithWriteTimeout bounds each outbound frame write.
func WithWriteTimeout(d time.Duration) Option {
	return func(c *Config) { c.WriteTimeout = d }
}

// WithDecodeErrorBudget sets how many malformed frames one inbound
// connection may deliver before disconnection.
func WithDecodeErrorBudget(n int) Option {
	return func(c *Config) { c.DecodeErrorBudget = n }
}

// WithInboundRate caps per-connection inbound envelopes per second (with
// the given token-bucket burst).
func WithInboundRate(rate float64, burst int) Option {
	return func(c *Config) { c.InboundRate, c.InboundBurst = rate, burst }
}

// Faults injects failures into the outbound delivery path so the
// transport (and protocol scenarios above it) can be exercised under
// loss. Set the knobs before starting the node; they are read per
// write under an internal lock.
//
// Injected drops model a lossy network below a reliable transport: the
// write is suppressed and reported as a failed attempt, so the
// delivery layer retries it with backoff exactly as it would a real
// timeout. Injected kills close the sender's connection after a
// successful write, forcing the redial path. Latency delays every
// write. Injected stalls model a gray sender — every StallEvery-th
// write completes, but only after an extra StallFor delay, so the peer
// sees intact-but-late traffic rather than loss.
type Faults struct {
	// DropRate is the probability in [0,1] that a write attempt is
	// suppressed and reported as failed.
	DropRate float64
	// Latency is added before every write attempt.
	Latency time.Duration
	// KillEvery forcibly closes the outbound connection after every
	// Nth successful write (0 = never).
	KillEvery int
	// StallEvery delays every Nth successful write by StallFor before
	// the bytes go out (0 = never) — the stalled-write gray failure:
	// delivery succeeds, so no retry fires, but the receiver's RTT for
	// that exchange inflates by StallFor.
	StallEvery int
	// StallFor is the extra delay a stalled write suffers. Default 1s
	// when StallEvery is set.
	StallFor time.Duration

	mu     sync.Mutex
	rng    *rand.Rand
	writes int
	drops  int
	kills  int
	stalls int
}

// NewFaults creates an injector whose drop decisions are drawn from a
// deterministic seeded stream.
func NewFaults(seed int64) *Faults {
	return &Faults{rng: rand.New(rand.NewSource(seed))}
}

// Drops returns how many write attempts were suppressed so far.
func (f *Faults) Drops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.drops
}

// Kills returns how many connections were killed so far.
func (f *Faults) Kills() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.kills
}

// Stalls returns how many writes were stalled so far.
func (f *Faults) Stalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stalls
}

// nextWrite decides the fate of one write attempt.
func (f *Faults) nextWrite() (drop, kill bool, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delay = f.Latency
	if f.DropRate > 0 && f.rng.Float64() < f.DropRate {
		f.drops++
		return true, false, delay
	}
	f.writes++
	if f.StallEvery > 0 && f.writes%f.StallEvery == 0 {
		f.stalls++
		if f.StallFor > 0 {
			delay += f.StallFor
		} else {
			delay += time.Second
		}
	}
	if f.KillEvery > 0 && f.writes%f.KillEvery == 0 {
		f.kills++
		return false, true, delay
	}
	return false, false, delay
}

// peerQueue is one peer's outbound mailbox plus the connection its
// writer goroutine currently holds. The writer owns conn; other
// goroutines may only nil-and-close it under mu (connection kill),
// which the writer observes as a failed write and repairs by
// redialing.
type peerQueue struct {
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []msg.Envelope
	closed bool
	conn   net.Conn
}

func newPeerQueue(addr string) *peerQueue {
	pq := &peerQueue{addr: addr}
	pq.cond = sync.NewCond(&pq.mu)
	return pq
}

// push enqueues env; it reports false if the queue is closed or full.
func (pq *peerQueue) push(env msg.Envelope, limit int) bool {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	if pq.closed || len(pq.queue) >= limit {
		return false
	}
	pq.queue = append(pq.queue, env)
	pq.cond.Signal()
	return true
}

// popBatch blocks until at least one envelope is pending (or the queue
// closes), then moves up to max envelopes into dst without further
// blocking. It reports false once the queue is closed and empty.
func (pq *peerQueue) popBatch(dst []msg.Envelope, max int) ([]msg.Envelope, bool) {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	for len(pq.queue) == 0 && !pq.closed {
		pq.cond.Wait()
	}
	if len(pq.queue) == 0 {
		return dst, false
	}
	return pq.moveLocked(dst, max), true
}

// drainInto moves whatever is already queued into dst, up to max total,
// without blocking.
func (pq *peerQueue) drainInto(dst []msg.Envelope, max int) []msg.Envelope {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	return pq.moveLocked(dst, max)
}

func (pq *peerQueue) moveLocked(dst []msg.Envelope, max int) []msg.Envelope {
	n := len(pq.queue)
	if n > max-len(dst) {
		n = max - len(dst)
	}
	if n <= 0 {
		return dst
	}
	dst = append(dst, pq.queue[:n]...)
	pq.queue = pq.queue[n:]
	return dst
}

// depth returns how many envelopes are waiting in the queue.
func (pq *peerQueue) depth() int {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	return len(pq.queue)
}

// close shuts the queue and its connection; pending envelopes are
// returned so the caller can dead-letter them.
func (pq *peerQueue) close() []msg.Envelope {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	pq.closed = true
	if pq.conn != nil {
		pq.conn.Close()
		pq.conn = nil
	}
	pending := pq.queue
	pq.queue = nil
	pq.cond.Broadcast()
	return pending
}

// killConn closes the current connection (if any) without closing the
// queue; the writer redials on the next attempt. Outbound connections
// carry no inbound data, so closing them cannot discard received
// bytes: envelopes already written are flushed to the peer with the
// FIN.
func (pq *peerQueue) killConn() bool {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	if pq.conn == nil {
		return false
	}
	pq.conn.Close()
	pq.conn = nil
	return true
}

// current returns the connection the writer should use, or nil if it
// must dial first.
func (pq *peerQueue) current() net.Conn {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	return pq.conn
}

// install stores a freshly dialed connection, closing any connection it
// displaces (so a redial can never leak the old socket). It reports
// false — and closes conn — if the queue already closed.
func (pq *peerQueue) install(conn net.Conn) bool {
	pq.mu.Lock()
	if pq.closed {
		pq.mu.Unlock()
		conn.Close()
		return false
	}
	if pq.conn != nil && pq.conn != conn {
		pq.conn.Close()
	}
	pq.conn = conn
	pq.mu.Unlock()
	return true
}

// writeLoop drains one peer's queue for the life of the node. Each
// round grabs every envelope already pending (up to wire.MaxBatch),
// optionally lingers FlushDelay to let more arrive, and hands the batch
// to the codec-specific delivery path.
func (n *Node) writeLoop(pq *peerQueue) {
	defer n.wg.Done()
	batch := make([]msg.Envelope, 0, wire.MaxBatch)
	for {
		var ok bool
		batch, ok = pq.popBatch(batch[:0], wire.MaxBatch)
		if !ok {
			return
		}
		if d := n.cfg.FlushDelay; d > 0 && n.cfg.Codec == CodecBinary && len(batch) < wire.MaxBatch {
			// Linger to coalesce: envelopes arriving within the window
			// ride in the same frame instead of paying per-frame framing
			// and syscall costs. Shutdown mid-linger just delivers what
			// we already hold.
			n.sleep(d)
			batch = pq.drainInto(batch, wire.MaxBatch)
		}
		n.deliverBatch(pq, batch)
	}
}

// framePool recycles outbound frame buffers across flushes so the
// steady-state binary encode path allocates nothing.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}

// deliverBatch writes one batch of envelopes to the peer. Under the
// binary codec, envelopes are coalesced greedily into multi-envelope
// frames: a frame is flushed when appending the next envelope would push
// its payload past MaxFrameBytes (so every coalesced frame respects the
// receiver's limit by construction) or when it reaches wire.MaxBatch
// records. Under the gob codec each envelope travels in its own frame,
// exactly as before.
func (n *Node) deliverBatch(pq *peerQueue, batch []msg.Envelope) {
	if n.cfg.Codec == CodecGob {
		for _, env := range batch {
			n.deliver(pq, env)
		}
		return
	}
	bufp := framePool.Get().(*[]byte)
	frame := (*bufp)[:0]
	kinds := make([]msg.Type, 0, len(batch))
	// One version decision per batch: v2 only when some envelope carries
	// a trace context, so untraced traffic stays byte-identical to a
	// v1-only sender (and interops with v1-only receivers).
	version := wire.PayloadVersion(batch)
	flush := func() {
		if len(kinds) == 0 {
			return
		}
		wire.SetCount(frame[frameHeaderLen:], len(kinds))
		if err := finishBinaryFrame(frame); err != nil {
			for _, t := range kinds {
				n.countDropped(t)
			}
		} else {
			n.sendFrame(pq, frame, kinds)
		}
		frame = frame[:0]
		kinds = kinds[:0]
	}
	for _, env := range batch {
		if len(frame) == 0 {
			frame = append(frame, make([]byte, frameHeaderLen)...)
			frame = wire.AppendHeader(frame, version)
		}
		mark := len(frame)
		next, err := wire.AppendEnvelope(frame, n.params, env, version)
		if err != nil {
			// Unencodable message: retrying cannot help.
			n.countDropped(env.Msg.Type())
			continue
		}
		if len(next)-frameHeaderLen > n.cfg.MaxFrameBytes && len(kinds) > 0 {
			// Doesn't fit alongside the others: flush what we have and
			// re-append into a fresh frame. A lone envelope bigger than
			// MaxFrameBytes still ships in its own frame (the receiver's
			// limit, not ours, judges it — same as the gob path).
			frame = next[:mark]
			flush()
			frame = append(frame, make([]byte, frameHeaderLen)...)
			frame = wire.AppendHeader(frame, version)
			if next, err = wire.AppendEnvelope(frame, n.params, env, version); err != nil {
				n.countDropped(env.Msg.Type())
				continue
			}
		}
		frame = next
		kinds = append(kinds, env.Msg.Type())
		if len(kinds) == wire.MaxBatch {
			flush()
		}
	}
	flush()
	*bufp = frame[:0]
	framePool.Put(bufp)
}

// deliver writes one envelope in its own gob frame (the legacy codec
// path).
func (n *Node) deliver(pq *peerQueue, env msg.Envelope) {
	w, err := encodeEnvelope(env)
	if err != nil {
		// Unencodable message: retrying cannot help.
		n.countDropped(env.Msg.Type())
		return
	}
	frame, err := encodeFrame(w)
	if err != nil {
		n.countDropped(env.Msg.Type())
		return
	}
	kind := [1]msg.Type{env.Msg.Type()}
	n.sendFrame(pq, frame, kind[:])
}

// sendFrame makes up to MaxAttempts tries at writing one pre-encoded
// frame, redialing as needed, backing off exponentially (with jitter)
// between tries. Retries and exhaustion are counted once per envelope
// the frame carries; exhausted envelopes are dead-lettered into the
// node's counters.
func (n *Node) sendFrame(pq *peerQueue, frame []byte, kinds []msg.Type) {
	for attempt := 1; attempt <= n.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			for _, t := range kinds {
				n.countRetried(t)
			}
			if !n.sleep(n.backoff(attempt - 1)) {
				break // node shutting down
			}
		}
		if n.writeOnce(pq, frame) {
			return
		}
	}
	for _, t := range kinds {
		n.countDropped(t)
	}
}

// backoff returns the delay before the retry-th retry: exponential from
// BaseBackoff, capped at MaxBackoff, plus up to 50% random jitter so
// synchronized retry storms decorrelate.
func (n *Node) backoff(retry int) time.Duration {
	d := n.cfg.BaseBackoff << (retry - 1)
	if d > n.cfg.MaxBackoff || d <= 0 {
		d = n.cfg.MaxBackoff
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// sleep waits for d, returning false if the node shut down first.
func (n *Node) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-n.done:
		return false
	}
}

// writeOnce performs one delivery attempt: ensure a connection, apply
// fault injection, write the frame under the write deadline. It reports
// success; on failure the connection is torn down so the next attempt
// redials.
func (n *Node) writeOnce(pq *peerQueue, frame []byte) bool {
	conn := pq.current()
	if conn == nil {
		c, err := net.DialTimeout("tcp", pq.addr, n.cfg.DialTimeout)
		if err != nil {
			return false
		}
		if !pq.install(c) {
			return false
		}
		conn = c
	}
	if f := n.cfg.Faults; f != nil {
		drop, kill, delay := f.nextWrite()
		if delay > 0 && !n.sleep(delay) {
			return false
		}
		if drop {
			// Simulated network loss: report a failed attempt so the
			// retry path (not TCP) earns the reliability.
			return false
		}
		if kill {
			defer pq.killConn()
		}
	}
	if err := writeFrame(conn, frame, n.cfg.WriteTimeout); err != nil {
		pq.killConn()
		return false
	}
	return true
}

// enqueue hands env to its peer's writer, spawning the writer on first
// use. Queue overflow dead-letters the envelope and returns an error.
func (n *Node) enqueue(env msg.Envelope) error {
	n.peersMu.Lock()
	if n.closed {
		n.peersMu.Unlock()
		return fmt.Errorf("tcptransport: node closed")
	}
	pq, ok := n.peers[env.To.Addr]
	if !ok {
		pq = newPeerQueue(env.To.Addr)
		n.peers[env.To.Addr] = pq
		n.wg.Add(1)
		go n.writeLoop(pq)
	}
	n.peersMu.Unlock()
	if !pq.push(env, n.cfg.QueueLimit) {
		n.countDropped(env.Msg.Type())
		return fmt.Errorf("tcptransport: outbound queue to %s full (limit %d)", env.To.Addr, n.cfg.QueueLimit)
	}
	return nil
}

// KillConnections force-closes every live outbound connection,
// returning how many it closed. Writers redial on their next delivery
// attempt; queued envelopes are unaffected. Inbound connections are
// left alone — they are owned by the remote writer, which repairs them
// the same way. Useful for crash/partition experiments.
func (n *Node) KillConnections() int {
	n.peersMu.Lock()
	queues := make([]*peerQueue, 0, len(n.peers))
	for _, pq := range n.peers {
		queues = append(queues, pq)
	}
	n.peersMu.Unlock()
	killed := 0
	for _, pq := range queues {
		if pq.killConn() {
			killed++
		}
	}
	return killed
}

func (n *Node) countRetried(t msg.Type) {
	n.mu.Lock()
	n.machine.Counters().CountRetried(t)
	n.mu.Unlock()
	n.emitTransport(obs.KindRetry, t.String())
}

func (n *Node) countDropped(t msg.Type) {
	n.mu.Lock()
	n.machine.Counters().CountDropped(t)
	n.mu.Unlock()
	n.emitTransport(obs.KindDrop, t.String())
}
