package overlay

import (
	"math/rand"
	"testing"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/rtt"
)

// TestClockPauseNotDeclared is the clock-jump regression test: a node
// whose local clock stalls (GC pause, VM migration) and then bursts
// back must be suspected at most — never declared failed — when the
// pause is shorter than the declaration window, with both the fixed
// detector machinery and the adaptive RTT estimator attached. The
// resume burst of late pongs must clear the suspicion and leave the
// network consistent.
func TestClockPauseNotDeclared(t *testing.T) {
	cfg := Config{
		Params:  id.Params{B: 4, D: 4},
		Latency: ConstantLatency(5 * time.Millisecond),
		Liveness: &liveness.Config{
			ProbeInterval:  100 * time.Millisecond,
			ProbeTimeout:   400 * time.Millisecond,
			SuspectAfter:   2,
			IndirectProbes: 2,
			ConfirmRounds:  4,
		},
		// The adaptive estimator must ride the pause out too: the burst
		// of late pongs feeds it without triggering a declaration.
		RTT:          &rtt.Config{MinRTO: 50 * time.Millisecond, MaxRTO: 3 * time.Second},
		TickInterval: 50 * time.Millisecond,
	}
	rng := rand.New(rand.NewSource(7))
	net := New(cfg)
	refs := RandomRefs(cfg.Params, 10, rng, nil)
	net.BuildDirect(refs, rng)

	net.RunFor(3 * time.Second) // probers acquire targets, estimators warm
	if st := net.LivenessStats(); st.Declared != 0 || st.Suspects != 0 {
		t.Fatalf("pre-pause: %d declared, %d suspects; want a quiet network", st.Declared, st.Suspects)
	}

	victim := refs[4].ID
	// 1.5s of total stall: with misses accruing at one per ProbeTimeout
	// (400ms) and SuspectAfter 2, the victim turns suspect well inside
	// the pause, but the four confirmation rounds cannot all expire
	// before the resume burst answers them.
	if err := net.PauseNode(victim, 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	net.RunFor(5 * time.Second) // pause, burst, and settle

	st := net.LivenessStats()
	if st.Declared != 0 {
		t.Fatalf("paused-then-resumed node declared failed %d times; a pause below the declaration window must never declare", st.Declared)
	}
	if st.Suspects == 0 {
		t.Fatalf("victim was never suspected — the pause fault did not engage (deferred deliveries: %d)", net.PausedDeferred())
	}
	if st.Recovered == 0 {
		t.Fatalf("suspicion never cleared after the resume burst (suspects %d)", st.Suspects)
	}
	if net.PausedDeferred() == 0 {
		t.Fatal("no delivery was ever deferred — the pause fault did not engage")
	}
	requireConsistent(t, net)
}

// TestClockPauseLongEnoughDeclares is the contrast case: a stall longer
// than the whole declaration window is indistinguishable from a crash,
// and the detector is REQUIRED to declare it — holding the declaration
// would mask real failures. The node's machine is still alive, so after
// the burst it can rejoin; this test only pins the declaration.
func TestClockPauseLongEnoughDeclares(t *testing.T) {
	cfg := Config{
		Params:  id.Params{B: 4, D: 4},
		Latency: ConstantLatency(5 * time.Millisecond),
		Liveness: &liveness.Config{
			ProbeInterval:  100 * time.Millisecond,
			ProbeTimeout:   300 * time.Millisecond,
			SuspectAfter:   2,
			IndirectProbes: 2,
			ConfirmRounds:  2,
		},
		TickInterval: 50 * time.Millisecond,
	}
	rng := rand.New(rand.NewSource(9))
	net := New(cfg)
	refs := RandomRefs(cfg.Params, 8, rng, nil)
	net.BuildDirect(refs, rng)
	net.RunFor(2 * time.Second)

	if err := net.PauseNode(refs[2].ID, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	net.RunFor(20 * time.Second)
	if st := net.LivenessStats(); st.Declared == 0 {
		t.Fatalf("a 30s stall was never declared (suspects %d) — an over-window pause must read as a crash", st.Suspects)
	}
}

// TestPauseNodeErrors pins the injector's error contract.
func TestPauseNodeErrors(t *testing.T) {
	cfg := Config{Params: id.Params{B: 4, D: 4}}
	rng := rand.New(rand.NewSource(1))
	net := New(cfg)
	refs := RandomRefs(cfg.Params, 2, rng, nil)
	net.BuildDirect(refs, rng)
	if err := net.PauseNode(refs[0].ID, 0); err == nil {
		t.Error("zero-duration pause accepted")
	}
	unknown := RandomRefs(cfg.Params, 1, rng, map[id.ID]bool{refs[0].ID: true, refs[1].ID: true})[0]
	if err := net.PauseNode(unknown.ID, time.Second); err == nil {
		t.Error("pause of unknown node accepted")
	}
	if err := net.SetLossRate(0.1); err == nil {
		t.Error("SetLossRate without Config.Loss accepted")
	}
}
