// Command baselinecmp reproduces the qualitative comparison of §1 of
// Liu & Lam (ICDCS 2003) between their join protocol and the
// multicast-based join of Tapestry (Hildrum et al.): the multicast
// approach "has the disadvantage of requiring many existing nodes to
// store and process extra states as well as send and receive messages on
// behalf of joining nodes", and — without the paper's wait/retry
// machinery — loses updates under concurrent same-suffix joins.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"hypercube/internal/baseline"
	"hypercube/internal/id"
	"hypercube/internal/overlay"
)

func main() {
	var (
		trials = flag.Int("trials", 5, "seeds per configuration")
		n      = flag.Int("n", 100, "initial network size")
		m      = flag.Int("m", 80, "concurrent joiners")
		b      = flag.Int("b", 4, "digit base (small bases maximize contention)")
		d      = flag.Int("d", 4, "digits per ID")
	)
	flag.Parse()
	p := id.Params{B: *b, D: *d}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "baselinecmp: %v\n", err)
		os.Exit(1)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "seed\tsystem\tmessages\tpeak pending state on existing nodes\tviolations\tlost joiners")
	for trial := 0; trial < *trials; trial++ {
		seed := int64(trial)*101 + 7

		ours, err := overlay.RunWave(overlay.WaveConfig{Params: p, N: *n, M: *m, Seed: seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "baselinecmp: %v\n", err)
			os.Exit(1)
		}
		// Events == messages delivered == messages sent (reliable network),
		// comparable to the baseline's TotalMessages.
		fmt.Fprintf(w, "%d\tLiu-Lam join\t%d\t0 (Qj on T-nodes only, transient)\t%d\t0\n",
			seed, ours.Events, len(ours.Violations))

		base, err := baseline.RunWave(baseline.Config{Params: p, N: *n, M: *m, Seed: seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "baselinecmp: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%d\tmulticast join\t%d\t%d (max %d on one node)\t%d\t%d\n",
			seed, base.TotalMessages, base.PeakPendingState, base.PeakPendingPerNode,
			base.Violations, base.LostJoiners)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "baselinecmp: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nLiu-Lam keeps join state on joining nodes only; the multicast baseline parks")
	fmt.Println("pending records on established nodes and loses updates under contention.")
}
