package tcptransport

import (
	"fmt"
	"testing"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
	"hypercube/internal/wire"
)

// The wire benchmarks compare the binary codec against the legacy gob
// codec on the two envelope shapes that dominate protocol traffic: a
// small scalar-only message (the steady-state case: probes, notifies,
// acks) and a big table-carrying message (join and anti-entropy bursts).
// `make bench-wire` pins this suite and records ns/op, B/op, allocs/op,
// and bytes-on-wire into BENCH_wire.json.

var benchParams = id.Params{B: 16, D: 8}

func benchRefs() (table.Ref, table.Ref) {
	return table.Ref{ID: id.MustParse(benchParams, "21233a0f"), Addr: "127.0.0.1:47001"},
		table.Ref{ID: id.MustParse(benchParams, "ff10cb21"), Addr: "127.0.0.1:47002"}
}

// benchSmallEnvelope is the steady-state shape: scalar fields only.
func benchSmallEnvelope() msg.Envelope {
	from, to := benchRefs()
	return msg.Envelope{From: from, To: to, Msg: msg.RvNghNoti{Level: 3, Digit: 11, State: table.StateS}}
}

// benchBigEnvelope carries a 20-entry table plus a full fill vector —
// the join/anti-entropy burst shape.
func benchBigEnvelope() msg.Envelope {
	from, to := benchRefs()
	tbl := table.New(benchParams, from.ID)
	for i := 0; i < 20; i++ {
		level := i % benchParams.D
		digit := (i*7 + 1) % benchParams.B
		raw := make([]byte, benchParams.D)
		for j := range raw {
			raw[j] = byte((i + j*3) % benchParams.B)
		}
		// Wire order: raw[level] must be the entry's digit and the suffix
		// below level must match the owner for Set to accept it.
		for j := 0; j < level; j++ {
			raw[j] = byte(from.ID.Digit(j))
		}
		raw[level] = byte(digit)
		nid, err := id.FromRawDigits(benchParams, raw)
		if err != nil {
			panic(err)
		}
		if nid == from.ID {
			continue
		}
		tbl.Set(level, digit, table.Neighbor{ID: nid, Addr: fmt.Sprintf("10.0.0.%d:47010", i), State: table.StateT})
	}
	return msg.Envelope{From: from, To: to, Msg: msg.SyncRly{Table: tbl.Snapshot(), Fill: tbl.FillVector()}}
}

func benchmarkBinaryEncode(b *testing.B, env msg.Envelope) {
	b.Helper()
	buf := make([]byte, 0, 4096)
	var size int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf = wire.AppendHeader(buf, wire.Version)
		var err error
		buf, err = wire.AppendEnvelope(buf, benchParams, env, wire.Version)
		if err != nil {
			b.Fatal(err)
		}
		wire.SetCount(buf, 1)
		size = len(buf)
	}
	b.ReportMetric(float64(size), "wirebytes")
}

func benchmarkGobEncode(b *testing.B, env msg.Envelope) {
	b.Helper()
	var size int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err := EncodeGobPayload(env)
		if err != nil {
			b.Fatal(err)
		}
		size = len(payload)
	}
	b.ReportMetric(float64(size), "wirebytes")
}

func benchmarkBinaryDecode(b *testing.B, env msg.Envelope) {
	b.Helper()
	payload, err := wire.EncodePayload(benchParams, env)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeOne(benchParams, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(payload)), "wirebytes")
}

func benchmarkGobDecode(b *testing.B, env msg.Envelope) {
	b.Helper()
	payload, err := EncodeGobPayload(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeGobPayload(benchParams, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(payload)), "wirebytes")
}

func BenchmarkWireEncodeBinarySmall(b *testing.B) { benchmarkBinaryEncode(b, benchSmallEnvelope()) }
func BenchmarkWireEncodeBinaryBig(b *testing.B)   { benchmarkBinaryEncode(b, benchBigEnvelope()) }
func BenchmarkWireEncodeGobSmall(b *testing.B)    { benchmarkGobEncode(b, benchSmallEnvelope()) }
func BenchmarkWireEncodeGobBig(b *testing.B)      { benchmarkGobEncode(b, benchBigEnvelope()) }
func BenchmarkWireDecodeBinarySmall(b *testing.B) { benchmarkBinaryDecode(b, benchSmallEnvelope()) }
func BenchmarkWireDecodeBinaryBig(b *testing.B)   { benchmarkBinaryDecode(b, benchBigEnvelope()) }
func BenchmarkWireDecodeGobSmall(b *testing.B)    { benchmarkGobDecode(b, benchSmallEnvelope()) }
func BenchmarkWireDecodeGobBig(b *testing.B)      { benchmarkGobDecode(b, benchBigEnvelope()) }

// BenchmarkFrameCoalesce packs 32 small envelopes into one frame the way
// deliverBatch does — header reservation, append, count patch, header
// stamp — measuring the per-flush cost of coalescing.
func BenchmarkFrameCoalesce(b *testing.B) {
	const batch = 32
	env := benchSmallEnvelope()
	buf := make([]byte, 0, 8192)
	var size int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf = append(buf, make([]byte, frameHeaderLen)...)
		buf = wire.AppendHeader(buf, wire.Version)
		var err error
		for j := 0; j < batch; j++ {
			if buf, err = wire.AppendEnvelope(buf, benchParams, env, wire.Version); err != nil {
				b.Fatal(err)
			}
		}
		wire.SetCount(buf[frameHeaderLen:], batch)
		if err := finishBinaryFrame(buf); err != nil {
			b.Fatal(err)
		}
		size = len(buf)
	}
	b.ReportMetric(float64(size)/batch, "wirebytes")
}
