// Command nemesis is the deterministic chaos-search driver: it sweeps a
// range of seeds, derives a composed fault schedule from each (join
// waves, graceful leaves, crashes, partitions, byzantine members, gray
// slowness, loss bursts, clock pauses, restart-from-persist — all over
// the virtual-clock simulator), executes it with the invariant oracle at
// every quiescence point, and on a violation delta-debugs the schedule
// down to a minimal repro.json. The same seed always produces the same
// schedule, the same verdicts, and the same shrunk repro, so
//
//	nemesis -replay repro.json
//
// re-executes a recorded failure bit-identically — the FoundationDB
// simulation-testing workflow for this codebase.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/nemesis"
)

func main() {
	var (
		b     = flag.Int("b", 16, "digit base")
		d     = flag.Int("d", 4, "digits per ID")
		n     = flag.Int("n", 32, "base network size per schedule")
		steps = flag.Int("steps", 8, "actions per generated schedule")
		seeds = flag.String("seeds", "", "seed range to sweep, e.g. 0..99 (inclusive); overrides -seed")
		seed  = flag.Uint64("seed", 1, "single seed to run")

		syncEvery = flag.Duration("sync-interval", 500*time.Millisecond, "anti-entropy/settle round interval")
		reach     = flag.Int("reach-pairs", 16, "sampled reachability pairs per audit")

		replay   = flag.String("replay", "", "re-execute a recorded repro.json and compare findings; exit 0 only on an exact match")
		out      = flag.String("out", ".", "directory for repro files of shrunk failures")
		noShrink = flag.Bool("no-shrink", false, "emit the full failing schedule instead of delta-debugging it")
		maxExec  = flag.Int("max-shrink-exec", 200, "execution budget per shrink")
		verbose  = flag.Bool("v", false, "log every schedule step")
	)
	flag.Parse()
	os.Exit(run(*b, *d, *n, *steps, *seeds, *seed, *syncEvery, *reach, *replay, *out, *noShrink, *maxExec, *verbose))
}

func run(b, d, n, steps int, seedsSpec string, seed uint64, syncEvery time.Duration, reach int, replay, out string, noShrink bool, maxExec int, verbose bool) int {
	opt := nemesis.Options{SyncEvery: syncEvery, ReachPairs: reach}
	if verbose {
		opt.Log = os.Stdout
	}
	if replay != "" {
		return runReplay(replay, opt)
	}

	lo, hi, err := parseSeeds(seedsSpec, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nemesis: %v\n", err)
		return 1
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "nemesis: %v\n", err)
		return 1
	}
	p := id.Params{B: b, D: d}
	fmt.Printf("chaos search: seeds %d..%d, %d nodes (b=%d, d=%d), %d steps per schedule\n\n", lo, hi, n, b, d, steps)

	failures := 0
	wall := time.Now()
	for s := lo; s <= hi; s++ {
		sched := nemesis.Generate(s, p, n, steps)
		res, err := nemesis.Execute(sched, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nemesis: seed %d: %v\n", s, err)
			return 1
		}
		if !res.Failed() {
			fmt.Printf("seed %4d: ok    (%2d steps, %3d nodes final, virtual %v)\n",
				s, len(sched.Steps), res.FinalSize, res.VirtualEnd.Round(time.Second))
			continue
		}
		failures++
		fmt.Printf("seed %4d: FAIL  %d findings, first: %v\n", s, len(res.Findings), res.Findings[0])
		repro := nemesis.Repro{Schedule: sched, Findings: res.Findings}
		if !noShrink {
			sh := nemesis.Shrink(sched, opt, res.Findings[0].Check, maxExec)
			if len(sh.Findings) > 0 {
				fmt.Printf("           shrunk %d -> %d steps (nodes %d -> %d) in %d executions\n",
					len(sched.Steps), len(sh.Schedule.Steps), sched.Nodes, sh.Schedule.Nodes, sh.Executions)
				repro = nemesis.Repro{Schedule: sh.Schedule, Findings: sh.Findings}
			}
		}
		path := filepath.Join(out, fmt.Sprintf("repro-%d.json", s))
		if err := nemesis.WriteRepro(path, repro); err != nil {
			fmt.Fprintf(os.Stderr, "nemesis: %v\n", err)
			return 1
		}
		fmt.Printf("           repro written to %s (replay with -replay)\n", path)
	}
	fmt.Printf("\nswept %d schedules in %v: %d violating\n", hi-lo+1, time.Since(wall).Round(time.Millisecond), failures)
	if failures > 0 {
		return 1
	}
	return 0
}

func runReplay(path string, opt nemesis.Options) int {
	r, err := nemesis.LoadRepro(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nemesis: %v\n", err)
		return 1
	}
	fmt.Printf("replaying %s: seed %d, %d nodes, %d steps, expecting %d findings\n",
		path, r.Schedule.Seed, r.Schedule.Nodes, len(r.Schedule.Steps), len(r.Findings))
	got, match, err := nemesis.Replay(r, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nemesis: %v\n", err)
		return 1
	}
	for _, f := range got {
		fmt.Printf("  %v\n", f)
	}
	if !match {
		fmt.Fprintf(os.Stderr, "nemesis: replay DIVERGED from the recording (recorded %d findings, replayed %d) — the repro no longer reproduces\n",
			len(r.Findings), len(got))
		return 1
	}
	fmt.Printf("replay matches the recording exactly (%d findings)\n", len(got))
	return 0
}

// parseSeeds interprets "lo..hi"; empty means the single -seed value.
func parseSeeds(spec string, single uint64) (uint64, uint64, error) {
	if spec == "" {
		return single, single, nil
	}
	parts := strings.SplitN(spec, "..", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -seeds %q, want lo..hi", spec)
	}
	lo, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad -seeds %q: %v", spec, err)
	}
	hi, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad -seeds %q: %v", spec, err)
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("bad -seeds %q: hi < lo", spec)
	}
	return lo, hi, nil
}
