package liveness

import (
	"testing"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

var p44 = id.Params{B: 4, D: 4}

func mkRef(t *testing.T, s string) table.Ref {
	t.Helper()
	return table.Ref{ID: id.MustParse(p44, s), Addr: "sim://" + s}
}

func cfgFast() Config {
	return Config{
		ProbeInterval:  100 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		SuspectAfter:   2,
		IndirectProbes: 1,
		ConfirmRounds:  2,
	}
}

// drive ticks the prober in small steps up to deadline, feeding every
// probe through respond (nil = blackhole) and collecting declarations
// and unreachable drops.
func drive(p *Prober, deadline time.Duration, respond func(env msg.Envelope) []msg.Envelope) (declared, unreachable []table.Ref) {
	for now := time.Duration(0); now <= deadline; now += 25 * time.Millisecond {
		out, dec, unr := p.Tick(now)
		declared = append(declared, dec...)
		unreachable = append(unreachable, unr...)
		for len(out) > 0 {
			var next []msg.Envelope
			for _, env := range out {
				if respond == nil {
					continue
				}
				next = append(next, respond(env)...)
			}
			out = next
		}
	}
	return declared, unreachable
}

func TestRoutineProbeAnswered(t *testing.T) {
	self := mkRef(t, "0000")
	a := mkRef(t, "1111")
	p := NewProber(cfgFast(), self)
	p.SetTargets([]table.Ref{a})

	// A responsive target is never suspected, let alone declared.
	peer := NewProber(cfgFast(), a)
	declared, _ := drive(p, 3*time.Second, func(env msg.Envelope) []msg.Envelope {
		if env.To.ID == a.ID {
			return peer.HandleMessage(env)
		}
		if env.To.ID == self.ID {
			return p.HandleMessage(env)
		}
		return nil
	})
	if len(declared) != 0 {
		t.Fatalf("responsive target declared failed: %v", declared)
	}
	st := p.Stats()
	if st.ProbesSent == 0 || st.PongsReceived == 0 {
		t.Fatalf("no probe round trips recorded: %+v", st)
	}
	if st.Suspects != 0 || st.Declared != 0 {
		t.Fatalf("spurious suspicion: %+v", st)
	}
}

func TestSilentTargetDeclared(t *testing.T) {
	self := mkRef(t, "0000")
	dead := mkRef(t, "1111")
	helper := mkRef(t, "2222")
	p := NewProber(cfgFast(), self)
	p.SetTargets([]table.Ref{dead, helper})

	// The helper answers (and relays indirect probes); dead answers its
	// first probe — proving it was alive once, which is what makes its
	// later silence a declarable crash rather than an unreachable drop —
	// and nothing after that.
	relayed := 0
	deadAnswers := 1
	declared, _ := drive(p, 10*time.Second, func(env msg.Envelope) []msg.Envelope {
		switch env.To.ID {
		case helper.ID:
			out := RespondPing(helper, env.From, env.Msg.(msg.Ping))
			for _, e := range out {
				if e.To.ID == dead.ID {
					relayed++
				}
			}
			// Relayed pings vanish into the dead node.
			var keep []msg.Envelope
			for _, e := range out {
				if e.To.ID != dead.ID {
					keep = append(keep, e)
				}
			}
			return keep
		case self.ID:
			return p.HandleMessage(env)
		case dead.ID:
			if pm, ok := env.Msg.(msg.Ping); ok && deadAnswers > 0 {
				deadAnswers--
				return RespondPing(dead, env.From, pm)
			}
			return nil
		}
		return nil
	})
	if len(declared) != 1 || declared[0].ID != dead.ID {
		t.Fatalf("declared = %v, want exactly %v", declared, dead.ID)
	}
	st := p.Stats()
	if st.Suspects != 1 || st.Declared != 1 {
		t.Fatalf("stats %+v, want 1 suspect and 1 declaration", st)
	}
	if st.IndirectSent == 0 || relayed == 0 {
		t.Fatalf("confirmation rounds sent no indirect probes (stats %+v, relayed %d)", st, relayed)
	}
	if p.TargetCount() != 1 {
		t.Fatalf("declared target still monitored (%d targets)", p.TargetCount())
	}

	// Tombstone: a stale table re-offering the dead node must not revive it.
	p.SetTargets([]table.Ref{dead, helper})
	if p.TargetCount() != 1 {
		t.Fatal("tombstoned target re-adopted from stale table")
	}
}

func TestNeverAnsweredDroppedUnreachable(t *testing.T) {
	// A target adopted from someone else's table that never once answers
	// is dropped as unreachable, not declared: there is no evidence it was
	// ever alive from here, so no tombstone and no gossip — and it is
	// welcome back should it ever turn up reachable (e.g. delivered by an
	// anti-entropy round after a partition heals).
	self := mkRef(t, "0000")
	ghost := mkRef(t, "1111")
	helper := mkRef(t, "2222")
	p := NewProber(cfgFast(), self)
	p.SetTargets([]table.Ref{ghost, helper})

	peer := NewProber(cfgFast(), helper)
	declared, unreachable := drive(p, 10*time.Second, func(env msg.Envelope) []msg.Envelope {
		switch env.To.ID {
		case helper.ID:
			out := peer.HandleMessage(env)
			var keep []msg.Envelope
			for _, e := range out {
				if e.To.ID != ghost.ID {
					keep = append(keep, e)
				}
			}
			return keep
		case self.ID:
			return p.HandleMessage(env)
		}
		return nil
	})
	if len(declared) != 0 {
		t.Fatalf("never-answered target declared failed: %v", declared)
	}
	if len(unreachable) != 1 || unreachable[0].ID != ghost.ID {
		t.Fatalf("unreachable = %v, want exactly %v", unreachable, ghost.ID)
	}
	st := p.Stats()
	if st.Declared != 0 || st.Unreachable != 1 {
		t.Fatalf("stats %+v, want 0 declared and 1 unreachable", st)
	}
	if p.TargetCount() != 1 {
		t.Fatalf("dropped target still monitored (%d targets)", p.TargetCount())
	}

	// No tombstone: unlike a declared failure, an unreachable drop is
	// re-adopted when the table offers the node again.
	p.SetTargets([]table.Ref{ghost, helper})
	if p.TargetCount() != 2 {
		t.Fatal("unreachable target not re-adopted after drop")
	}
}

func TestObserveClearsSuspicion(t *testing.T) {
	self := mkRef(t, "0000")
	a := mkRef(t, "1111")
	p := NewProber(cfgFast(), self)
	p.SetTargets([]table.Ref{a})

	// Let probes go unanswered until a is a suspect.
	for now := time.Duration(0); p.SuspectCount() == 0 && now < 5*time.Second; now += 25 * time.Millisecond {
		p.Tick(now)
	}
	if p.SuspectCount() != 1 {
		t.Fatal("target never became suspect")
	}
	// Any protocol traffic from a proves it alive.
	p.Observe(a.ID)
	if p.SuspectCount() != 0 {
		t.Fatal("Observe did not clear suspicion")
	}
	if p.Stats().Recovered != 1 {
		t.Fatalf("stats %+v, want Recovered=1", p.Stats())
	}
	// And its orphaned probes expiring later must not re-suspect it.
	_, declared, _ := p.Tick(10 * time.Second)
	if len(declared) != 0 || p.SuspectCount() != 0 {
		t.Fatal("stale probe expiry re-suspected a recovered target")
	}
}

func TestRespondPingDirectAndRelay(t *testing.T) {
	self := mkRef(t, "0000")
	origin := mkRef(t, "1111")
	target := mkRef(t, "2222")

	// Direct probe: pong to the origin.
	out := RespondPing(self, origin, msg.Ping{Seq: 9, Origin: origin})
	if len(out) != 1 || out[0].To.ID != origin.ID {
		t.Fatalf("direct ping answered %v", out)
	}
	if pong, ok := out[0].Msg.(msg.Pong); !ok || pong.Seq != 9 {
		t.Fatalf("direct ping answer = %v, want Pong{9}", out[0].Msg)
	}

	// Indirect probe addressed to someone else: relay unchanged.
	ping := msg.Ping{Seq: 10, Origin: origin, Target: target}
	out = RespondPing(self, origin, ping)
	if len(out) != 1 || out[0].To.ID != target.ID {
		t.Fatalf("indirect ping relayed %v", out)
	}
	if got := out[0].Msg.(msg.Ping); got != ping {
		t.Fatalf("relay mutated the ping: %v", got)
	}

	// Indirect probe that reached its target: pong to the origin, not the relay.
	relay := mkRef(t, "3333")
	out = RespondPing(target, relay, ping)
	if len(out) != 1 || out[0].To.ID != origin.ID {
		t.Fatalf("terminal indirect ping answered %v", out)
	}
}

func TestLatePongIgnored(t *testing.T) {
	self := mkRef(t, "0000")
	a := mkRef(t, "1111")
	p := NewProber(cfgFast(), self)
	p.SetTargets([]table.Ref{a})
	out, _, _ := p.Tick(0)
	if len(out) != 1 {
		t.Fatalf("first tick sent %d probes", len(out))
	}
	seq := out[0].Msg.(msg.Ping).Seq
	// Let the probe expire, then answer it.
	p.Tick(time.Second)
	p.HandleMessage(msg.Envelope{From: a, To: self, Msg: msg.Pong{Seq: seq}})
	if p.Stats().PongsReceived != 0 {
		t.Fatal("expired probe's pong still counted")
	}
}

func TestSetTargetsRefreshesAndForgets(t *testing.T) {
	self := mkRef(t, "0000")
	a := mkRef(t, "1111")
	b := mkRef(t, "2222")
	p := NewProber(cfgFast(), self)
	p.SetTargets([]table.Ref{a, b, self}) // self is never monitored
	if p.TargetCount() != 2 {
		t.Fatalf("TargetCount = %d, want 2", p.TargetCount())
	}
	// b vanishes from the table (graceful leave): forgotten, not declared.
	p.SetTargets([]table.Ref{a})
	if p.TargetCount() != 1 {
		t.Fatalf("TargetCount = %d after removal, want 1", p.TargetCount())
	}
	_, declared, _ := p.Tick(time.Minute)
	if len(declared) != 0 {
		t.Fatalf("forgotten target declared: %v", declared)
	}
}

func TestPartitionHoldsDeclarationsThenRecovers(t *testing.T) {
	self := mkRef(t, "0000")
	targets := []table.Ref{mkRef(t, "1111"), mkRef(t, "2222"), mkRef(t, "3333"), mkRef(t, "0011")}
	p := NewProber(cfgFast(), self)
	p.SetTargets(targets)

	// The targets prove themselves alive once, then every one goes silent
	// at the same time: the classic partition signature.
	for _, tgt := range targets {
		p.Observe(tgt.ID)
	}
	declared, unreachable := drive(p, 10*time.Second, nil)
	if len(declared) != 0 || len(unreachable) != 0 {
		t.Fatalf("declared %v / dropped %v during partition, want all held", declared, unreachable)
	}
	if !p.Partitioned() {
		t.Fatal("prober did not enter partition mode")
	}
	st := p.Stats()
	if st.PartitionsEntered != 1 || st.DeclarationsHeld == 0 || st.Declared != 0 {
		t.Fatalf("stats %+v, want 1 partition entered, held declarations, 0 declared", st)
	}
	if p.SuspectCount() != len(targets) {
		t.Fatalf("SuspectCount = %d, want %d (held suspects stay suspects)", p.SuspectCount(), len(targets))
	}

	// The partition heals: traffic from the peers proves them alive, the
	// mode exits, and nothing was ever tombstoned.
	for _, tgt := range targets {
		p.Observe(tgt.ID)
	}
	p.Tick(11 * time.Second)
	if p.Partitioned() {
		t.Fatal("prober stuck in partition mode after recovery")
	}
	st = p.Stats()
	if st.PartitionsExited != 1 {
		t.Fatalf("stats %+v, want 1 partition exited", st)
	}
	if p.TargetCount() != len(targets) {
		t.Fatalf("TargetCount = %d after heal, want %d (no tombstones)", p.TargetCount(), len(targets))
	}

	// Normal service resumes: a single dead node among live peers is a
	// crash, not a partition, and must be declared.
	dead := targets[0]
	live := targets[1:]
	responders := make(map[id.ID]*Prober, len(live))
	for _, tgt := range live {
		responders[tgt.ID] = NewProber(cfgFast(), tgt)
	}
	declared, _ = drive(p, 25*time.Second, func(env msg.Envelope) []msg.Envelope {
		if env.To.ID == self.ID {
			return p.HandleMessage(env)
		}
		if env.To.ID == dead.ID {
			return nil
		}
		if r, ok := responders[env.To.ID]; ok {
			out := r.HandleMessage(env)
			var keep []msg.Envelope
			for _, e := range out {
				if e.To.ID != dead.ID {
					keep = append(keep, e)
				}
			}
			return keep
		}
		return nil
	})
	if len(declared) != 1 || declared[0].ID != dead.ID {
		t.Fatalf("declared = %v after partition exit, want exactly %v", declared, dead.ID)
	}
	if p.Partitioned() {
		t.Fatal("single crash misread as a partition")
	}
}

func TestDeadSuspectDeclaredAfterPartitionExit(t *testing.T) {
	// A suspect that genuinely crashed during the partition never answers
	// after the heal. The exit wipe discards its partition-tainted
	// evidence but must relaunch its confirmation rounds — routine probing
	// skips suspects, so without the relaunch nothing would ever probe it
	// again and it would stay suspect forever. With the relaunch it falls
	// after ConfirmRounds of fresh silence against the healed network.
	self := mkRef(t, "0000")
	dead := mkRef(t, "1111")
	live := []table.Ref{mkRef(t, "2222"), mkRef(t, "3333"), mkRef(t, "0011")}
	all := append([]table.Ref{dead}, live...)
	p := NewProber(cfgFast(), self)
	p.SetTargets(all)
	for _, tgt := range all {
		p.Observe(tgt.ID) // all alive once, so silence is declarable
	}

	// Everyone goes silent at once: partition mode, declarations held.
	declared, unreachable := drive(p, 10*time.Second, nil)
	if len(declared) != 0 || len(unreachable) != 0 {
		t.Fatalf("declared %v / dropped %v during partition, want all held", declared, unreachable)
	}
	if !p.Partitioned() {
		t.Fatal("prober did not enter partition mode")
	}

	// The partition heals; the live peers answer again, dead stays silent.
	responders := make(map[id.ID]*Prober, len(live))
	for _, tgt := range live {
		responders[tgt.ID] = NewProber(cfgFast(), tgt)
	}
	var after []table.Ref
	for now := 10 * time.Second; now <= 40*time.Second; now += 25 * time.Millisecond {
		out, dec, _ := p.Tick(now)
		after = append(after, dec...)
		for len(out) > 0 {
			var next []msg.Envelope
			for _, env := range out {
				switch {
				case env.To.ID == self.ID:
					next = append(next, p.HandleMessage(env)...)
				case env.To.ID == dead.ID:
					// crashed for real: blackhole
				default:
					if r, ok := responders[env.To.ID]; ok {
						for _, e := range r.HandleMessage(env) {
							if e.To.ID != dead.ID {
								next = append(next, e)
							}
						}
					}
				}
			}
			out = next
		}
	}
	if p.Partitioned() {
		t.Fatal("prober stuck in partition mode after heal")
	}
	if len(after) != 1 || after[0].ID != dead.ID {
		t.Fatalf("declared = %v after heal, want exactly %v (dead suspect stuck unprobed)", after, dead.ID)
	}
	if p.TargetCount() != len(live) {
		t.Fatalf("TargetCount = %d after declaration, want %d", p.TargetCount(), len(live))
	}
}

func TestNoPartitionBelowMinTargets(t *testing.T) {
	// With fewer simultaneously-suspect peers than PartitionMinTargets the
	// suspect fraction is not evidence of a partition — declarations
	// proceed (otherwise a 2-node network could never declare anything).
	self := mkRef(t, "0000")
	a, b := mkRef(t, "1111"), mkRef(t, "2222")
	p := NewProber(cfgFast(), self)
	p.SetTargets([]table.Ref{a, b})
	p.Observe(a.ID) // both were alive once, so silence is declarable
	p.Observe(b.ID)
	declared, _ := drive(p, 10*time.Second, nil)
	if len(declared) != 2 {
		t.Fatalf("declared %v, want both silent targets declared", declared)
	}
	if p.Partitioned() || p.Stats().PartitionsEntered != 0 {
		t.Fatalf("partition mode entered below the target floor: %+v", p.Stats())
	}
}

func TestPartitionThresholdConfigurable(t *testing.T) {
	// A sub-threshold suspect cohort must not trip the mode even above
	// the minimum target count.
	self := mkRef(t, "0000")
	cfg := cfgFast()
	cfg.PartitionThreshold = 0.9
	cfg.PartitionMinTargets = 2
	p := NewProber(cfg, self)
	dead := mkRef(t, "1111")
	live := []table.Ref{mkRef(t, "2222"), mkRef(t, "3333"), mkRef(t, "0011")}
	p.SetTargets(append([]table.Ref{dead}, live...))
	p.Observe(dead.ID) // alive once, so its crash is declarable
	responders := make(map[id.ID]*Prober, len(live))
	for _, tgt := range live {
		responders[tgt.ID] = NewProber(cfgFast(), tgt)
	}
	declared, _ := drive(p, 15*time.Second, func(env msg.Envelope) []msg.Envelope {
		if env.To.ID == self.ID {
			return p.HandleMessage(env)
		}
		if r, ok := responders[env.To.ID]; ok {
			out := r.HandleMessage(env)
			var keep []msg.Envelope
			for _, e := range out {
				if e.To.ID != dead.ID {
					keep = append(keep, e)
				}
			}
			return keep
		}
		return nil
	})
	if len(declared) != 1 || declared[0].ID != dead.ID {
		t.Fatalf("declared = %v, want exactly %v", declared, dead.ID)
	}
	if p.Stats().PartitionsEntered != 0 {
		t.Fatalf("1/4 suspects tripped a 0.9 threshold: %+v", p.Stats())
	}
}
