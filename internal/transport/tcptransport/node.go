package tcptransport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hypercube/internal/antientropy"
	"hypercube/internal/core"
	"hypercube/internal/guard"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/msg"
	"hypercube/internal/obs"
	"hypercube/internal/rtt"
	"hypercube/internal/sampling"
	"hypercube/internal/table"
	"hypercube/internal/trace"
	"hypercube/internal/wire"
)

// Node hosts one protocol machine behind a TCP listener. Outbound
// messages go through the reliable-delivery layer (see delivery.go):
// per-peer bounded queues drained by writer goroutines with retry,
// exponential backoff, and automatic redial.
type Node struct {
	params id.Params
	cfg    Config

	mu      sync.Mutex // guards machine, engine, and sampler
	machine *core.Machine
	engine  *antientropy.Engine // nil unless Config.AntiEntropy is set
	sampler *sampling.Engine    // nil unless Config.Sampling is set

	// probeMu guards prober. It is never held together with mu: the
	// liveness tick snapshots machine state under mu first, releases it,
	// then updates the prober — so probe traffic cannot deadlock against
	// protocol delivery.
	probeMu sync.Mutex
	prober  *liveness.Prober
	start   time.Time

	// est is the shared per-peer RTT estimator (nil unless Config.RTT is
	// set). It has its own internal lock, so the prober (under probeMu)
	// and the machine (under mu) feed it without coordination.
	est *rtt.Estimator

	// Observability (see obs.go): the always-on per-node hub and
	// registry, the clocked sink protocol components emit through, and
	// the optional in-memory trace ring (Config.TraceRing).
	tobs     *nodeObs
	sink     obs.Sink
	ring     *obs.Ring
	selfName string

	ln net.Listener

	peersMu  sync.Mutex
	peers    map[string]*peerQueue
	accepted map[net.Conn]struct{}

	statusPolls atomic.Int64 // diagnostic: Status() call count

	// Inbound hardening counters (see readLoop): malformed frames,
	// frames over the size limit, envelopes stalled by the inbound rate
	// limiter, and connections dropped for exhausting the decode-error
	// budget or declaring an oversized frame.
	decodeErrors     atomic.Int64
	oversizedFrames  atomic.Int64
	throttledInbound atomic.Int64
	guardDisconnects atomic.Int64

	wg     sync.WaitGroup
	done   chan struct{}
	closed bool
}

// StartSeed launches the first node of a network (§6.1) listening on
// listenAddr ("127.0.0.1:0" picks a free port).
func StartSeed(p id.Params, opts core.Options, nodeID id.ID, listenAddr string, options ...Option) (*Node, error) {
	return start(p, listenAddr, func(ref table.Ref) *core.Machine {
		return core.NewSeed(p, ref, opts)
	}, nodeID, options)
}

// StartJoiner launches a node that is not yet part of any network; call
// Join to integrate it.
func StartJoiner(p id.Params, opts core.Options, nodeID id.ID, listenAddr string, options ...Option) (*Node, error) {
	return start(p, listenAddr, func(ref table.Ref) *core.Machine {
		return core.NewJoiner(p, ref, opts)
	}, nodeID, options)
}

func start(p id.Params, listenAddr string, mk func(table.Ref) *core.Machine, nodeID id.ID, options []Option) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("tcptransport: %w", err)
	}
	var cfg Config
	for _, o := range options {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen: %w", err)
	}
	n := &Node{
		params:   p,
		cfg:      cfg.withDefaults(),
		ln:       ln,
		peers:    make(map[string]*peerQueue),
		accepted: make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	ref := table.Ref{ID: nodeID, Addr: ln.Addr().String()}
	n.machine = mk(ref)
	n.start = time.Now()
	n.setupObs()
	n.machine.SetSink(n.sink)
	// Quarantine cooldowns age on wall time, not just liveness ticks.
	n.machine.SetClock(func() time.Duration { return time.Since(n.start) })
	// One tracer per node: crypto/rand IDs (real deployments need
	// collision-free IDs across independently started processes, unlike
	// the simulator's deterministic streams). Components tolerate a nil
	// tracer, so the wiring below is unconditional.
	var tr *trace.Tracer
	if n.cfg.TraceSample > 0 {
		tr = trace.NewTracer(trace.NewRandomGen(), n.cfg.TraceSample)
	}
	n.machine.SetTracer(tr)
	if n.cfg.RTT != nil {
		// One estimator per node, shared by the prober (probe RTTs) and
		// the machine (request/reply round trips); both consumers below
		// read it for deadlines and degraded flags.
		n.est = rtt.New(*n.cfg.RTT)
		n.machine.SetRTT(n.est)
	}
	if n.cfg.Liveness != nil {
		n.prober = liveness.NewProber(*n.cfg.Liveness, ref)
		n.prober.SetSink(n.sink)
		n.prober.SetTracer(tr)
		if n.est != nil {
			n.prober.SetRTT(n.est)
			n.prober.SetClock(func() time.Duration { return time.Since(n.start) })
		}
		n.wg.Add(1)
		go n.livenessLoop()
	}
	if n.cfg.AntiEntropy != nil {
		n.engine = antientropy.New(*n.cfg.AntiEntropy, n.machine)
		n.engine.SetSink(n.sink)
		n.engine.SetTracer(tr)
		if est := n.est; est != nil {
			n.engine.SetHealth(func(x id.ID) bool { return !est.Degraded(x) })
		}
		n.wg.Add(1)
		go n.antiEntropyLoop()
	}
	if n.cfg.Sampling != nil {
		n.sampler = sampling.New(*n.cfg.Sampling, ref)
		// Quarantined peers are inadmissible, and so are degraded ones
		// when the estimator runs; live table neighbors re-prime an
		// emptied view; gateway selection and anti-entropy peer choice
		// draw from the min-wise samplers. All hooks run under n.mu — the
		// sampler is only ever driven while the machine lock is held.
		est := n.est
		n.sampler.SetValidator(func(r table.Ref) bool {
			if n.machine.PeerQuarantined(r.ID) {
				return false
			}
			return est == nil || !est.Degraded(r.ID)
		})
		n.sampler.SetBootstrap(n.machine.SyncPeers)
		n.sampler.SetSink(n.sink)
		n.sampler.SetTracer(tr)
		n.machine.SetPeerSampler(n.sampler.Sample)
		if n.engine != nil {
			n.engine.SetPeerSampler(n.sampler.Sample)
		}
		n.wg.Add(1)
		go n.samplingLoop()
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Ref returns the node's identity: its ID plus actual listen address.
func (n *Node) Ref() table.Ref { return n.machine.Self() }

// Status returns the node's protocol status.
func (n *Node) Status() core.Status {
	n.statusPolls.Add(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.machine.Status()
}

// Snapshot returns an immutable copy of the node's table.
func (n *Node) Snapshot() table.Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.machine.Snapshot()
}

// Counters returns a copy of the node's message counters, including the
// delivery layer's retried/dropped tallies.
func (n *Node) Counters() msg.Counters {
	n.mu.Lock()
	defer n.mu.Unlock()
	return *n.machine.Counters()
}

// GuardStats returns the machine's hostile-input counters (rejections,
// quarantines, budget deferrals).
func (n *Node) GuardStats() core.GuardStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.machine.GuardStats()
}

// TransportGuardStats are the inbound connection-hardening counters.
type TransportGuardStats struct {
	// DecodeErrors counts malformed frames; OversizedFrames frames over
	// MaxFrameBytes; ThrottledInbound envelopes stalled by the inbound
	// rate limiter; Disconnects connections dropped for exhausting the
	// decode-error budget or declaring an oversized frame.
	DecodeErrors     int64
	OversizedFrames  int64
	ThrottledInbound int64
	Disconnects      int64
}

// TransportGuardStats returns the inbound hardening counters.
func (n *Node) TransportGuardStats() TransportGuardStats {
	return TransportGuardStats{
		DecodeErrors:     n.decodeErrors.Load(),
		OversizedFrames:  n.oversizedFrames.Load(),
		ThrottledInbound: n.throttledInbound.Load(),
		Disconnects:      n.guardDisconnects.Load(),
	}
}

// Join starts the join protocol through the given bootstrap node. The
// returned error covers enqueueing only; delivery failures are retried
// asynchronously and surface through Counters and AwaitStatus.
func (n *Node) Join(bootstrap table.Ref) error {
	n.mu.Lock()
	out, err := n.machine.StartJoin(bootstrap)
	n.mu.Unlock()
	if err != nil {
		return err
	}
	return n.sendAll(out)
}

// Leave starts a graceful departure (§7 extension); await StatusLeft
// before shutting the node down so holders can repair their tables.
func (n *Node) Leave() error {
	n.mu.Lock()
	out, err := n.machine.StartLeave()
	n.mu.Unlock()
	if err != nil {
		return err
	}
	return n.sendAll(out)
}

// AwaitStatus polls until the node reaches the wanted status or the
// context expires. The poll interval is Config.PollInterval.
func (n *Node) AwaitStatus(ctx context.Context, want core.Status) error {
	tick := time.NewTicker(n.cfg.PollInterval)
	defer tick.Stop()
	for {
		got := n.Status()
		if got == want {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("tcptransport: node %v stuck in %v: %w", n.Ref().ID, got, ctx.Err())
		case <-tick.C:
		}
	}
}

// livenessLoop drives the failure detector and the machine's timeout
// clock off real time. Each tick snapshots the machine's neighbor set,
// advances the prober (probe sends, suspicion, declarations), feeds any
// declared failures back into the machine, and runs Machine.Tick for
// join-protocol retransmissions and repair scheduling.
func (n *Node) livenessLoop() {
	defer n.wg.Done()
	interval := n.cfg.Liveness.ProbeInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-tick.C:
			n.livenessTick()
		}
	}
}

func (n *Node) livenessTick() {
	now := time.Since(n.start)

	n.mu.Lock()
	var targets []table.Ref
	self := n.machine.Self().ID
	n.machine.Table().ForEach(func(_, _ int, nb table.Neighbor) {
		if nb.ID != self {
			targets = append(targets, nb.Ref())
		}
	})
	targets = append(targets, n.machine.ReverseNeighbors()...)
	n.mu.Unlock()

	n.probeMu.Lock()
	n.prober.SetTargets(targets)
	probes, declared, unreachable := n.prober.Tick(now)
	n.probeMu.Unlock()
	_ = n.sendAll(probes)

	for _, gone := range declared {
		n.mu.Lock()
		out := n.machine.DeclareFailed(gone)
		n.mu.Unlock()
		_ = n.sendAll(out)
	}
	for _, gone := range unreachable {
		n.mu.Lock()
		out := n.machine.DropUnreachable(gone)
		n.mu.Unlock()
		_ = n.sendAll(out)
	}

	n.mu.Lock()
	out := n.machine.Tick(now)
	n.mu.Unlock()
	_ = n.sendAll(out)
}

// antiEntropyLoop drives periodic anti-entropy rounds off real time.
// The engine mutates the machine (audits purge entries, sync replies
// merge tables), so each tick runs under the machine lock; the
// resulting traffic is handed to the delivery layer outside it.
func (n *Node) antiEntropyLoop() {
	defer n.wg.Done()
	interval := n.cfg.AntiEntropy.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-tick.C:
			now := time.Since(n.start)
			n.mu.Lock()
			out := n.engine.Tick(now)
			n.mu.Unlock()
			// Round duration is the real time one engine tick held the
			// machine lock — the metric operators watch for audit cost.
			n.tobs.syncDur.Observe((time.Since(n.start) - now).Seconds())
			_ = n.sendAll(out)
		}
	}
}

// samplingLoop drives periodic gossip peer-sampling rounds off real
// time. The engine's hooks call into the machine (quarantine checks,
// bootstrap peers), so each tick runs under the machine lock; the
// resulting gossip is handed to the delivery layer outside it.
func (n *Node) samplingLoop() {
	defer n.wg.Done()
	interval := n.cfg.Sampling.Interval
	if interval <= 0 {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-tick.C:
			now := time.Since(n.start)
			n.mu.Lock()
			out := n.sampler.Tick(now)
			n.mu.Unlock()
			_ = n.sendAll(out)
		}
	}
}

// SamplingStats returns the peer-sampling engine's counters; ok is
// false when sampling is disabled.
func (n *Node) SamplingStats() (stats sampling.Stats, ok bool) {
	if n.sampler == nil {
		return sampling.Stats{}, false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sampler.Stats(), true
}

// SampledPeers returns up to k references from the sampling layer's
// min-wise samplers — the byzantine-resistant long-term sample, the
// right thing to persist alongside the table so a restart can rejoin
// even when every table neighbor is gone. Nil when sampling is off.
func (n *Node) SampledPeers(k int) []table.Ref {
	if n.sampler == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sampler.Sample(k)
}

// SeedSamplingPeers primes the sampling layer with initial contacts —
// e.g. the bootstrap ref before a join, or peers restored from a
// persisted snapshot before a rejoin. A no-op when sampling is off.
func (n *Node) SeedSamplingPeers(refs ...table.Ref) {
	if n.sampler == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sampler.SeedPeers(refs...)
}

// RTTStats returns the shared estimator's counters; ok is false when
// adaptive timeouts are disabled.
func (n *Node) RTTStats() (stats rtt.Stats, ok bool) {
	if n.est == nil {
		return rtt.Stats{}, false
	}
	return n.est.Stats(), true
}

// RTT returns the node's shared estimator, or nil when adaptive
// timeouts are disabled. The estimator is internally synchronized.
func (n *Node) RTT() *rtt.Estimator { return n.est }

// AntiEntropyStats returns the anti-entropy engine's counters; ok is
// false when anti-entropy is disabled.
func (n *Node) AntiEntropyStats() (stats antientropy.Stats, ok bool) {
	if n.engine == nil {
		return antientropy.Stats{}, false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.engine.Stats(), true
}

// LivenessStats returns the failure detector's counters plus the current
// suspect count; ok is false when liveness is disabled.
func (n *Node) LivenessStats() (stats liveness.Stats, suspects int, ok bool) {
	if n.prober == nil {
		return liveness.Stats{}, 0, false
	}
	n.probeMu.Lock()
	defer n.probeMu.Unlock()
	return n.prober.Stats(), n.prober.SuspectCount(), true
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		n.peersMu.Lock()
		if n.closed {
			n.peersMu.Unlock()
			conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.peersMu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// errReadLoopStopped signals that a per-envelope stage (token wait)
// aborted because the node is shutting down; it is not a decode error.
var errReadLoopStopped = errors.New("tcptransport: read loop stopped")

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.peersMu.Lock()
		delete(n.accepted, conn)
		n.peersMu.Unlock()
	}()
	budget := n.cfg.DecodeErrorBudget
	// Per-connection token bucket: a peer pushing envelopes faster than
	// InboundRate stalls here, which backpressures it through TCP instead
	// of letting it monopolize the machine lock. Tokens are charged per
	// envelope, not per frame, so a coalesced frame cannot smuggle
	// wire.MaxBatch envelopes past the limiter for one token.
	tokens := float64(n.cfg.InboundBurst)
	last := time.Now()
	takeToken := func() bool {
		now := time.Now()
		tokens += now.Sub(last).Seconds() * n.cfg.InboundRate
		if max := float64(n.cfg.InboundBurst); tokens > max {
			tokens = max
		}
		last = now
		if tokens < 1 {
			n.throttledInbound.Add(1)
			wait := time.Duration((1 - tokens) / n.cfg.InboundRate * float64(time.Second))
			if !n.sleep(wait) {
				return false
			}
			tokens = 1
			last = time.Now()
		}
		tokens--
		return true
	}
	for {
		payload, isBinary, err := readFrame(conn, n.cfg.MaxFrameBytes, n.cfg.ReadIdleTimeout)
		if err != nil {
			if errors.Is(err, errFrameTooBig) {
				n.oversizedFrames.Add(1)
				n.guardDisconnects.Add(1)
				n.emitTransport(obs.KindGuardDrop, "oversized frame")
			}
			return // closed, idle-timed-out, or oversized; peer redials
		}
		if isBinary {
			// One binary frame may carry several envelopes; each passes
			// the token bucket and handler individually. A malformed
			// record rejects the rest of the frame (records after it
			// have no trustworthy boundary) but envelopes already
			// decoded were already handled.
			err = wire.DecodePayload(n.params, payload, func(env msg.Envelope) error {
				if !takeToken() {
					return errReadLoopStopped
				}
				n.handleEnvelope(env)
				return nil
			})
		} else {
			if !takeToken() {
				return
			}
			var env msg.Envelope
			w, derr := decodeFrame(payload)
			if derr == nil {
				env, derr = decodeEnvelope(n.params, w)
			}
			err = derr
			if err == nil {
				n.handleEnvelope(env)
			}
		}
		if errors.Is(err, errReadLoopStopped) {
			return
		}
		if err != nil {
			// Frame boundaries survive a malformed payload, so charge the
			// budget and keep reading instead of tearing down on the
			// first bad frame.
			n.decodeErrors.Add(1)
			n.emitTransport(obs.KindGuardReject, "decode error")
			if budget--; budget <= 0 {
				n.guardDisconnects.Add(1)
				n.emitTransport(obs.KindGuardDrop, "decode-error budget exhausted")
				return
			}
		}
	}
}

// handleEnvelope routes one decoded inbound envelope: probe traffic to
// the liveness prober, everything else through the protocol machine.
func (n *Node) handleEnvelope(env msg.Envelope) {
	if n.prober != nil {
		t := env.Msg.Type()
		if t == msg.TPing || t == msg.TPong {
			n.probeMu.Lock()
			out := n.prober.HandleMessage(env)
			n.probeMu.Unlock()
			_ = n.sendAll(out)
			return
		}
		// Any protocol traffic from a peer is proof of life.
		n.probeMu.Lock()
		n.prober.Observe(env.From.ID)
		n.probeMu.Unlock()
	}
	if n.sampler != nil {
		switch env.Msg.Type() {
		case msg.TSamplePush, msg.TSamplePullReq, msg.TSamplePullRly:
			// The sampling engine owns its message types, like the prober
			// owns probes; the machine never sees them. The engine bypasses
			// the machine's guard path, so canonical-form validation runs
			// here (the binary codec already enforces it; the gob fallback
			// and any future codec get the same gate).
			if err := guard.Check(n.params, n.Ref().ID, env); err != nil {
				n.emitTransport(obs.KindGuardReject, env.Msg.Type().String())
				return
			}
			n.mu.Lock()
			out := n.sampler.Deliver(env)
			n.mu.Unlock()
			_ = n.sendAll(out)
			return
		}
	}
	n.mu.Lock()
	out := n.machine.Deliver(env)
	n.mu.Unlock()
	// Outbound trouble belongs to the delivery layer (retries, then
	// dead-letter counters); an unrelated peer's failure must not tear
	// down this inbound connection.
	_ = n.sendAll(out)
}

// sendAll hands every envelope to the delivery layer. Unlike a
// fail-fast loop, one undeliverable destination cannot starve
// envelopes addressed to other peers; all enqueue errors are joined.
func (n *Node) sendAll(envs []msg.Envelope) error {
	var errs []error
	for _, env := range envs {
		if err := n.enqueue(env); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close shuts the node down: listener, peer connections, goroutines.
// Envelopes still queued for delivery are dead-lettered.
func (n *Node) Close() error {
	n.peersMu.Lock()
	if n.closed {
		n.peersMu.Unlock()
		return nil
	}
	n.closed = true
	queues := make([]*peerQueue, 0, len(n.peers))
	for _, pq := range n.peers {
		queues = append(queues, pq)
	}
	conns := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		conns = append(conns, c)
	}
	n.peersMu.Unlock()

	close(n.done)
	err := n.ln.Close()
	for _, pq := range queues {
		for _, env := range pq.close() {
			n.countDropped(env.Msg.Type())
		}
	}
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	return err
}
