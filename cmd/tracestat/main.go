// Command tracestat aggregates a JSONL protocol trace (from hypercubed
// -trace, tracewave -out, or churn -trace) into the numbers an operator
// or experimenter actually wants: per-join spans with p50/p90/p99 total
// and per-phase latencies, the message-class breakdown, and the
// liveness/repair activity counts. Because the simulator and the live
// TCP runtime emit the same event schema (virtual vs. wall clock), the
// same tool reads both.
//
//	tracewave -n 256 -m 192 -out wave.jsonl
//	tracestat wave.jsonl
//	tracestat node1.jsonl node2.jsonl node3.jsonl   # per-node streams merge
//	tracestat -node 1a2b3c4d fleet.jsonl            # one node's view only
//	... | tracestat -        # or stream from stdin
//
// Every event carries the emitting node's identity, so per-node files
// concatenate into one fleet view and -node slices it back apart. The
// analysis is streaming (one pass, O(nodes) memory), so multi-GB soak
// traces are fine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"hypercube/internal/obs"
)

// bigMsgs are the table-carrying message types (msg.Message.Big()):
// their payload scales with the neighbor table, so the big/small split
// approximates the paper's bandwidth accounting.
var bigMsgs = map[string]bool{
	"CpRlyMsg": true, "JoinWaitRlyMsg": true, "JoinNotiMsg": true,
	"JoinNotiRlyMsg": true, "LeaveMsg": true, "SyncRlyMsg": true,
	"SyncPushMsg": true,
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	jsonOut := flag.Bool("json", false, "emit the summary as JSON instead of text")
	nodeFilter := flag.String("node", "", "analyze only events emitted by this node ID")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tracestat [-json] [-node <id>] <trace.jsonl ... | ->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	a := obs.NewAnalyzer()
	for _, path := range flag.Args() {
		if err := feedFile(a, path, *nodeFilter); err != nil {
			return err
		}
	}
	sum := a.Summary()
	if *jsonOut {
		return json.NewEncoder(os.Stdout).Encode(report(sum))
	}
	printText(os.Stdout, sum)
	return nil
}

// feedFile streams one JSONL trace ("-" is stdin) into the analyzer,
// dropping events from other nodes when a filter is set.
func feedFile(a *obs.Analyzer, path, nodeFilter string) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("%s line %d: %w", path, line, err)
		}
		if nodeFilter != "" && e.Node != nodeFilter {
			continue
		}
		a.Feed(e)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

type phaseStats struct {
	P50 time.Duration `json:"p50"`
	P90 time.Duration `json:"p90"`
	P99 time.Duration `json:"p99"`
	Max time.Duration `json:"max"`
}

func stats(ds []time.Duration) phaseStats {
	return phaseStats{
		P50: obs.Percentile(ds, 50),
		P90: obs.Percentile(ds, 90),
		P99: obs.Percentile(ds, 99),
		Max: obs.Percentile(ds, 100),
	}
}

type jsonReport struct {
	Events     int                   `json:"events"`
	Span       time.Duration         `json:"span"`
	Nodes      int                   `json:"nodes"`
	Joins      int                   `json:"joins"`
	Completed  int                   `json:"completed"`
	Restarts   int                   `json:"restarts"`
	Total      phaseStats            `json:"total"`
	Phases     map[string]phaseStats `json:"phases"`
	Sent       map[string]int        `json:"sent"`
	Received   map[string]int        `json:"received"`
	BigSent    int                   `json:"bigSent"`
	SmallSent  int                   `json:"smallSent"`
	Retries    int                   `json:"retries"`
	Drops      int                   `json:"drops"`
	Resends    int                   `json:"resends"`
	GiveUps    int                   `json:"giveUps"`
	Probes     int                   `json:"probes"`
	ProbeMiss  int                   `json:"probeMisses"`
	Suspects   int                   `json:"suspects"`
	Declared   int                   `json:"declared"`
	Repairs    int                   `json:"repairs"`
	SyncRounds int                   `json:"syncRounds"`
	Rejects    int                   `json:"guardRejects"`
	GuardDrops int                   `json:"guardDrops"`
	Quarantine int                   `json:"quarantines"`
	Releases   int                   `json:"quarantineReleases"`
	Busy       int                   `json:"busyDeferrals"`
	// Gray-failure / adaptive-timeout activity: answered direct-probe
	// round trips (sample count plus percentiles), late pongs learned
	// past their deadline, and degraded-flag churn.
	ProbeRTTCount   int        `json:"probeRTTCount"`
	ProbeRTT        phaseStats `json:"probeRTT"`
	LatePongs       int        `json:"latePongs"`
	Degraded        int        `json:"degradedMarked"`
	DegradedCleared int        `json:"degradedCleared"`
}

func report(sum *obs.Summary) jsonReport {
	completed := sum.Completed()
	totals := make([]time.Duration, 0, len(completed))
	copying := make([]time.Duration, 0, len(completed))
	waiting := make([]time.Duration, 0, len(completed))
	notifying := make([]time.Duration, 0, len(completed))
	restarts := 0
	for _, j := range sum.Joins {
		restarts += j.Restarts
	}
	for _, j := range completed {
		totals = append(totals, j.Total())
		copying = append(copying, j.Copying)
		waiting = append(waiting, j.Waiting)
		notifying = append(notifying, j.Notifying)
	}
	big, small := 0, 0
	for typ, n := range sum.Sent {
		if bigMsgs[typ] {
			big += n
		} else {
			small += n
		}
	}
	return jsonReport{
		Events: sum.Events, Span: sum.Span, Nodes: sum.Nodes,
		Joins: len(sum.Joins), Completed: len(completed), Restarts: restarts,
		Total: stats(totals),
		Phases: map[string]phaseStats{
			"copying":   stats(copying),
			"waiting":   stats(waiting),
			"notifying": stats(notifying),
		},
		Sent: sum.Sent, Received: sum.Received, BigSent: big, SmallSent: small,
		Retries: sum.Retries, Drops: sum.Drops, Resends: sum.Resends,
		GiveUps: sum.GiveUps, Probes: sum.Probes, ProbeMiss: sum.ProbeMiss,
		Suspects: sum.Suspects, Declared: sum.Declared,
		Repairs: sum.Repairs, SyncRounds: sum.SyncRound,
		Rejects: sum.GuardRejects, GuardDrops: sum.GuardDrops,
		Quarantine: sum.Quarantines, Releases: sum.Releases, Busy: sum.Busy,
		ProbeRTTCount: len(sum.ProbeRTTs), ProbeRTT: stats(sum.ProbeRTTs),
		LatePongs: sum.LatePongs, Degraded: sum.Degraded,
		DegradedCleared: sum.DegradedCleared,
	}
}

func printText(w io.Writer, sum *obs.Summary) {
	rep := report(sum)
	fmt.Fprintf(w, "trace: %d events over %v from %d nodes\n", rep.Events, rep.Span, rep.Nodes)
	fmt.Fprintf(w, "joins: %d spans, %d completed, %d restarts\n",
		rep.Joins, rep.Completed, rep.Restarts)
	if rep.Completed > 0 {
		fmt.Fprintf(w, "  %-10s %12s %12s %12s %12s\n", "phase", "p50", "p90", "p99", "max")
		row := func(name string, s phaseStats) {
			fmt.Fprintf(w, "  %-10s %12v %12v %12v %12v\n", name, s.P50, s.P90, s.P99, s.Max)
		}
		row("total", rep.Total)
		row("copying", rep.Phases["copying"])
		row("waiting", rep.Phases["waiting"])
		row("notifying", rep.Phases["notifying"])
	}

	if len(sum.Sent) > 0 {
		fmt.Fprintf(w, "messages sent: %d big (table-carrying), %d small\n", rep.BigSent, rep.SmallSent)
		types := make([]string, 0, len(sum.Sent))
		for typ := range sum.Sent {
			types = append(types, typ)
		}
		sort.Strings(types)
		for _, typ := range types {
			class := "small"
			if bigMsgs[typ] {
				class = "big"
			}
			fmt.Fprintf(w, "  %-16s %8d sent %8d received  (%s)\n",
				typ, sum.Sent[typ], sum.Received[typ], class)
		}
	}

	if rep.Retries+rep.Drops+rep.Resends+rep.GiveUps > 0 {
		fmt.Fprintf(w, "delivery: %d transport retries, %d drops; %d protocol resends, %d give-ups\n",
			rep.Retries, rep.Drops, rep.Resends, rep.GiveUps)
	}
	if rep.Probes+rep.Suspects+rep.Declared+rep.Repairs+rep.SyncRounds > 0 {
		fmt.Fprintf(w, "liveness: %d probes (%d missed), %d suspects, %d declared failed\n",
			rep.Probes, rep.ProbeMiss, rep.Suspects, rep.Declared)
		fmt.Fprintf(w, "repair: %d repair jobs, %d anti-entropy rounds\n",
			rep.Repairs, rep.SyncRounds)
	}
	if rep.ProbeRTTCount > 0 {
		fmt.Fprintf(w, "probe RTT: %d samples, p50 %v, p90 %v, p99 %v, max %v\n",
			rep.ProbeRTTCount, rep.ProbeRTT.P50, rep.ProbeRTT.P90, rep.ProbeRTT.P99, rep.ProbeRTT.Max)
	}
	if rep.LatePongs+rep.Degraded+rep.DegradedCleared > 0 {
		fmt.Fprintf(w, "gray failure: %d late pongs learned, %d degraded flags raised, %d cleared\n",
			rep.LatePongs, rep.Degraded, rep.DegradedCleared)
	}
	if rep.Rejects+rep.GuardDrops+rep.Quarantine+rep.Busy > 0 {
		fmt.Fprintf(w, "guard: %d rejected, %d dropped unvalidated, %d quarantines (%d released), %d busy deferrals\n",
			rep.Rejects, rep.GuardDrops, rep.Quarantine, rep.Releases, rep.Busy)
	}
}
