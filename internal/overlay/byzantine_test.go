package overlay

import (
	"math/rand"
	"testing"
	"time"

	"hypercube/internal/antientropy"
	"hypercube/internal/core"
	"hypercube/internal/guard"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

func byzantineConfig(seed int64) Config {
	return Config{
		Params:  id.Params{B: 4, D: 4},
		Latency: ConstantLatency(5 * time.Millisecond),
		Opts: core.Options{
			Timeouts: core.Timeouts{
				RetryAfter:  300 * time.Millisecond,
				MaxAttempts: 4,
				RepairAfter: 400 * time.Millisecond,
			},
			Guard: &guard.Policy{},
		},
		Loss: &Loss{Rate: 0.10, Seed: seed},
		Liveness: &liveness.Config{
			ProbeInterval:  100 * time.Millisecond,
			ProbeTimeout:   400 * time.Millisecond,
			SuspectAfter:   3,
			IndirectProbes: 2,
			ConfirmRounds:  3,
		},
		AntiEntropy:  &antientropy.Config{Interval: time.Second},
		TickInterval: 50 * time.Millisecond,
		Byzantine:    &Byzantine{Fraction: 0.1, Seed: seed},
	}
}

// TestByzantineSoak is the hostile-input tentpole scenario: a 32-node
// network (28 established, 4 joining through a wave) where ~10% of the
// established members are byzantine — their outgoing messages are
// randomly mutated, withheld, misaddressed, or replayed — on top of 10%
// message loss. No machine may panic, every hostile envelope must be
// rejected and charged by the guard layer, the wave must complete, and
// the network must still converge to Definition 3.8 consistency through
// its own retries, liveness, and anti-entropy machinery.
func TestByzantineSoak(t *testing.T) {
	cfg := byzantineConfig(21)
	// 3 of the 28 established members ≈ 10% of the final 32-node network.
	cfg.Byzantine.Fraction = 3.0 / 28.0
	rng := rand.New(rand.NewSource(21))
	net := New(cfg)
	taken := make(map[id.ID]bool)
	refs := RandomRefs(cfg.Params, 28, rng, taken)
	net.BuildDirect(refs, rng)

	byz := net.SelectByzantine(refs)
	if len(byz) != 3 {
		t.Fatalf("marked %d byzantine nodes, want 3 (~10%% of 32)", len(byz))
	}
	byzSet := make(map[id.ID]bool)
	for _, x := range byz {
		byzSet[x] = true
	}
	// Gateways and fallbacks must be honest: a joiner bootstrapping
	// through an adversary is the bootstrap-trust problem, out of scope.
	var honest []table.Ref
	for _, r := range refs {
		if !byzSet[r.ID] {
			honest = append(honest, r)
		}
	}

	joiners := RandomRefs(cfg.Params, 4, rng, taken)
	machines := make([]*core.Machine, len(joiners))
	for i, ref := range joiners {
		g := honest[rng.Intn(len(honest))]
		machines[i] = net.ScheduleJoin(ref, g, time.Second, honest[0], honest[1])
	}

	net.RunFor(90 * time.Second)

	for i, m := range machines {
		if !m.IsSNode() {
			t.Errorf("joiner %v stuck in %v", joiners[i].ID, m.Status())
		}
	}
	requireConsistent(t, net)

	bz := net.ByzantineStats()
	if bz.Mutated == 0 || bz.Withheld == 0 || bz.Replayed == 0 {
		t.Errorf("fault model barely engaged: %+v", bz)
	}
	gs := net.GuardStats()
	if gs.Rejected == 0 {
		t.Errorf("no hostile envelope was rejected (guard stats %+v, byzantine stats %+v)", gs, bz)
	}
	if gs.Scorer.Charges == 0 {
		t.Errorf("no misbehavior was charged to a sender: %+v", gs)
	}
	t.Logf("byzantine: %+v", bz)
	t.Logf("guard: %+v", gs)
	if st := net.LivenessStats(); st.Declared != 0 {
		t.Errorf("live nodes were declared failed under byzantine noise: %+v", st)
	}
}

// TestByzantineDeterminism: two identically seeded runs
// must corrupt identically — the property that makes byzantine failures
// replayable.
func TestByzantineDeterminism(t *testing.T) {
	run := func() (ByzantineStats, core.GuardStats) {
		cfg := byzantineConfig(9)
		rng := rand.New(rand.NewSource(9))
		net := New(cfg)
		taken := make(map[id.ID]bool)
		refs := RandomRefs(cfg.Params, 12, rng, taken)
		net.BuildDirect(refs, rng)
		net.SelectByzantine(refs)
		j := RandomRefs(cfg.Params, 1, rng, taken)[0]
		net.ScheduleJoin(j, refs[0], time.Second, refs[1])
		net.RunFor(15 * time.Second)
		return net.ByzantineStats(), net.GuardStats()
	}
	b1, g1 := run()
	b2, g2 := run()
	if b1 != b2 {
		t.Errorf("byzantine stats diverged across identical seeds:\n%+v\n%+v", b1, b2)
	}
	if g1 != g2 {
		t.Errorf("guard stats diverged across identical seeds:\n%+v\n%+v", g1, g2)
	}
}

// TestByzantineQuarantineInSim drives the full quarantine lifecycle
// through the simulator: a single aggressive byzantine node in a small
// network corrupts nearly everything it sends, so its peers' scorers
// cross the threshold, drop its traffic at ingress for the cooldown,
// and release it afterwards.
func TestByzantineQuarantineInSim(t *testing.T) {
	cfg := Config{
		Params:  id.Params{B: 4, D: 4},
		Latency: ConstantLatency(5 * time.Millisecond),
		Opts: core.Options{
			Guard: &guard.Policy{Cooldown: 10 * time.Second},
		},
		AntiEntropy:  &antientropy.Config{Interval: 200 * time.Millisecond},
		TickInterval: 50 * time.Millisecond,
		Byzantine:    &Byzantine{CorruptRate: 0.95, ReplayRate: 0.01, Seed: 5},
	}
	rng := rand.New(rand.NewSource(5))
	net := New(cfg)
	refs := RandomRefs(cfg.Params, 4, rng, nil)
	net.BuildDirect(refs, rng)
	net.MarkByzantine(refs[0].ID)

	net.RunFor(40 * time.Second)

	gs := net.GuardStats()
	if gs.Scorer.Quarantines == 0 {
		t.Fatalf("aggressive byzantine node was never quarantined: %+v (byzantine %+v)",
			gs, net.ByzantineStats())
	}
	if gs.IngressDropped == 0 {
		t.Errorf("no traffic was dropped at ingress during quarantine: %+v", gs)
	}
	if gs.Scorer.Releases == 0 {
		t.Errorf("no quarantine was released within %v cooldowns: %+v", 10*time.Second, gs)
	}
	t.Logf("guard: %+v", gs)
}

// TestHostileSnapshotRejected pins the corruption primitive itself: the
// snapshot corruptTable fabricates passes structural checks but fails
// semantic validation.
func TestHostileSnapshotRejected(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	from := table.Ref{ID: id.MustParse(p, "3210"), Addr: "sim://3210"}
	snap := hostileSnapshot(p, from)
	if err := snap.Validate(); err == nil {
		t.Fatal("hostile snapshot passed Snapshot.Validate — the fault model lost its teeth")
	}
	env := msg.Envelope{From: from, To: from, Msg: msg.SyncPush{Table: snap}}
	if _, ok := corruptTable(p, env); !ok {
		t.Fatal("corruptTable did not recognize a table-carrying message")
	}
}
