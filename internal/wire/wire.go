// Package wire implements the binary wire codec of the TCP transport: a
// hand-rolled, versioned, stdlib-only encoding of protocol envelopes
// that replaces the reflection-driven encoding/gob format on the hot
// path. The layout goals, in order:
//
//   - Zero allocations on the steady-state encode path: Append* functions
//     write into caller-owned buffers (pooled by the delivery layer), IDs
//     travel as raw digit bytes instead of parsed strings, and no
//     intermediate struct is built.
//   - Validation at the codec boundary: every length, coordinate, state
//     bit and digit read off the wire is range-checked before it sizes an
//     allocation or reaches the protocol machine (guard.Check stays as
//     the second, semantic ring).
//   - Canonical encoding: for any payload the decoder accepts,
//     re-encoding the decoded envelopes reproduces the payload byte for
//     byte. Table entries must arrive in ascending (level,digit) order,
//     booleans must be 0/1, fill-vector padding bits must be zero —
//     anything non-canonical is rejected, which keeps the differential
//     fuzz target (FuzzCodecRoundTrip) a strict equality check.
//   - Coalescing: one payload carries 1..MaxBatch envelopes, so many
//     small messages to the same peer (probes, JoinNoti, sync digests)
//     share one frame write and one length prefix.
//
// Payload layout (the frame header is the transport's concern; see
// tcptransport/frame.go for how binary payloads are flagged):
//
//	byte    version (currently 1)
//	byte    count   (1..MaxBatch envelopes)
//	count × record:
//	    uvarint bodyLen
//	    body:
//	        byte kind (msg.Type)
//	        ref  From, ref To
//	        per-kind fields (see appendBody)
//
// Common shapes:
//
//	ref:      byte present; if 1: D raw ID digits, uvarint addrLen, addr
//	id:       byte present; if 1: D raw ID digits
//	suffix:   uvarint len (≤ D), raw digits
//	table:    byte present; if 1: D raw owner digits, byte lo,
//	          byte hi+1 (0 = empty level range), uvarint filledCount,
//	          then per entry: byte level, byte digit, D raw ID digits,
//	          uvarint addrLen, addr, byte state — ascending (level,digit)
//	bitvec:   uvarint bitLen (0 = none), ⌈bitLen/64⌉ little-endian words
//	scalars:  uvarint for levels/sequence numbers, single bytes for
//	          results/states/flags
//
// All scalars are little-endian; all lengths are unsigned varints. A
// version bump changes the leading byte, so old decoders reject new
// payloads loudly instead of misparsing them.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
	"hypercube/internal/trace"
)

const (
	// Version is the baseline payload format version; the first payload
	// byte.
	Version = 1
	// VersionTraced is the v2 payload format: byte-identical to v1
	// except that every record carries a trace trailer after its body —
	// a flags byte (0 = untraced, 1 = traced) followed, when traced, by
	// the 16-byte trace ID and 8-byte span ID. The trailer sits outside
	// the length-prefixed body, so stripping it (and rewriting the
	// version byte) yields a valid v1 payload carrying the same
	// envelopes — the downgrade a v1-only hop effectively performs.
	VersionTraced = 2
	// MaxBatch is the largest envelope count one payload may carry. It
	// fits one byte, so the count field never needs a varint.
	MaxBatch = 127
	// MaxAddr bounds any transport address accepted off the wire;
	// addresses are host:port strings, so anything longer is hostile.
	MaxAddr = 256
	// headerLen is the payload header: version byte plus count byte.
	headerLen = 2
	// traceIDLen/spanIDLen/traceCtxLen size the traced trailer form.
	traceIDLen  = 16
	spanIDLen   = 8
	traceCtxLen = traceIDLen + spanIDLen
)

// errMalformed is the sentinel wrapped by every decode failure, so the
// transport can tell codec rejections apart from handler errors returned
// by a DecodePayload callback.
var errMalformed = errors.New("wire: malformed payload")

// IsMalformed reports whether err is a codec rejection (as opposed to an
// error returned by a DecodePayload callback).
func IsMalformed(err error) bool { return errors.Is(err, errMalformed) }

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errMalformed, fmt.Sprintf(format, args...))
}

// AppendHeader appends the payload header (version + count placeholder)
// to dst. The caller appends 1..MaxBatch envelopes with AppendEnvelope
// (passing the same version) and then fixes the count with SetCount.
// Pick the version with PayloadVersion so untraced payloads stay
// byte-identical to what a v1-only encoder produces.
func AppendHeader(dst []byte, version byte) []byte {
	if version != Version && version != VersionTraced {
		panic(fmt.Sprintf("wire: unknown payload version %d", version))
	}
	return append(dst, version, 0)
}

// PayloadVersion returns the minimal payload version able to carry the
// given envelopes: VersionTraced when at least one carries a sampled
// trace context, Version otherwise.
func PayloadVersion(envs []msg.Envelope) byte {
	for _, env := range envs {
		if env.Trace.Sampled() {
			return VersionTraced
		}
	}
	return Version
}

// SetCount patches the envelope count into a payload started with
// AppendHeader. payload must begin at the version byte.
func SetCount(payload []byte, n int) {
	if n < 1 || n > MaxBatch {
		panic(fmt.Sprintf("wire: payload count %d out of [1,%d]", n, MaxBatch))
	}
	payload[1] = byte(n)
}

// AppendEnvelope appends one envelope record (uvarint body length +
// body, plus the trace trailer under VersionTraced) to dst and returns
// the extended slice. It allocates nothing beyond growing dst.
// Envelopes the protocol can never produce (IDs of the wrong length,
// oversized addresses, negative levels, unknown message types) return
// an error, as does a traced envelope under version 1 — the caller
// chose too small a version (see PayloadVersion); the input slice is
// returned unchanged so a failed append can simply be skipped.
func AppendEnvelope(dst []byte, p id.Params, env msg.Envelope, version byte) ([]byte, error) {
	if version != VersionTraced && env.Trace.Sampled() {
		return dst, fmt.Errorf("wire: traced envelope needs payload version %d, got %d", VersionTraced, version)
	}
	mark := len(dst)
	out, err := appendBody(dst, p, env)
	if err != nil {
		return dst, err
	}
	bodyLen := len(out) - mark
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(bodyLen))
	// Shift the body right by the varint's width, then write the prefix.
	out = append(out, lenBuf[:n]...)
	copy(out[mark+n:], out[mark:mark+bodyLen])
	copy(out[mark:], lenBuf[:n])
	if version == VersionTraced {
		if c := env.Trace; c.Sampled() {
			if c.Span.IsZero() {
				return dst, fmt.Errorf("wire: trace context with zero span ID")
			}
			out = append(out, 1)
			out = append(out, c.Trace[:]...)
			out = append(out, c.Span[:]...)
		} else {
			out = append(out, 0)
		}
	}
	return out, nil
}

// EncodePayload builds a complete payload carrying the given envelopes —
// the convenience form used by tests and tools; the transport's hot path
// assembles payloads incrementally with AppendHeader/AppendEnvelope.
func EncodePayload(p id.Params, envs ...msg.Envelope) ([]byte, error) {
	return EncodePayloadV(p, PayloadVersion(envs), envs...)
}

// EncodePayloadV builds a payload in an explicit format version —
// VersionTraced carries a trace trailer per record even when every
// record is untraced (flags 0), which is what a traced node's batch
// that happens to hold only untraced envelopes looks like on the wire.
func EncodePayloadV(p id.Params, version byte, envs ...msg.Envelope) ([]byte, error) {
	if len(envs) == 0 || len(envs) > MaxBatch {
		return nil, fmt.Errorf("wire: %d envelopes per payload, want 1..%d", len(envs), MaxBatch)
	}
	out := AppendHeader(nil, version)
	var err error
	for _, env := range envs {
		if out, err = AppendEnvelope(out, p, env, version); err != nil {
			return nil, err
		}
	}
	SetCount(out, len(envs))
	return out, nil
}

// DecodePayload parses a payload and calls fn for each envelope in
// order. Malformed input returns an error satisfying IsMalformed; an
// error from fn aborts decoding and is returned as-is. The payload must
// be consumed exactly — trailing bytes are hostile.
func DecodePayload(p id.Params, payload []byte, fn func(msg.Envelope) error) error {
	if len(payload) < headerLen {
		return badf("%d bytes, want at least %d", len(payload), headerLen)
	}
	version := payload[0]
	if version != Version && version != VersionTraced {
		return badf("version %d, want %d or %d", version, Version, VersionTraced)
	}
	count := int(payload[1])
	if count < 1 || count > MaxBatch {
		return badf("envelope count %d out of [1,%d]", count, MaxBatch)
	}
	r := reader{buf: payload, pos: headerLen}
	for i := 0; i < count; i++ {
		bodyLen, err := r.uvarint()
		if err != nil {
			return err
		}
		body, err := r.take(bodyLen)
		if err != nil {
			return err
		}
		env, err := decodeBody(p, body)
		if err != nil {
			return err
		}
		if version == VersionTraced {
			if env.Trace, err = r.traceContext(); err != nil {
				return err
			}
		}
		if err := fn(env); err != nil {
			return err
		}
	}
	if r.pos != len(payload) {
		return badf("%d trailing bytes after %d envelopes", len(payload)-r.pos, count)
	}
	return nil
}

// DecodeOne parses a payload that must carry exactly one envelope.
func DecodeOne(p id.Params, payload []byte) (msg.Envelope, error) {
	var out msg.Envelope
	seen := 0
	err := DecodePayload(p, payload, func(env msg.Envelope) error {
		out = env
		seen++
		return nil
	})
	if err != nil {
		return msg.Envelope{}, err
	}
	if seen != 1 {
		return msg.Envelope{}, badf("%d envelopes, want exactly 1", seen)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

func appendBody(dst []byte, p id.Params, env msg.Envelope) ([]byte, error) {
	dst = append(dst, byte(env.Msg.Type()))
	var err error
	if dst, err = appendRef(dst, p, env.From); err != nil {
		return nil, err
	}
	if dst, err = appendRef(dst, p, env.To); err != nil {
		return nil, err
	}
	switch m := env.Msg.(type) {
	case msg.CpRst:
		return appendLevel(dst, m.Level)
	case msg.CpRly:
		return appendSnapshot(dst, p, m.Table)
	case msg.JoinWait:
		return dst, nil
	case msg.JoinWaitRly:
		dst = append(dst, byte(m.R))
		if dst, err = appendRef(dst, p, m.U); err != nil {
			return nil, err
		}
		return appendSnapshot(dst, p, m.Table)
	case msg.JoinNoti:
		if dst, err = appendSnapshot(dst, p, m.Table); err != nil {
			return nil, err
		}
		dst = appendBitVector(dst, m.FillVector)
		return appendLevel(dst, m.NotiLevel)
	case msg.JoinNotiRly:
		dst = append(dst, byte(m.R), boolByte(m.F))
		return appendSnapshot(dst, p, m.Table)
	case msg.InSysNoti:
		return dst, nil
	case msg.SpeNoti:
		if dst, err = appendRef(dst, p, m.X); err != nil {
			return nil, err
		}
		return appendRef(dst, p, m.Y)
	case msg.SpeNotiRly:
		if dst, err = appendRef(dst, p, m.X); err != nil {
			return nil, err
		}
		return appendRef(dst, p, m.Y)
	case msg.RvNghNoti:
		return appendCoords(dst, p, m.Level, m.Digit, m.State)
	case msg.RvNghNotiRly:
		return appendCoords(dst, p, m.Level, m.Digit, m.State)
	case msg.Leave:
		return appendSnapshot(dst, p, m.Table)
	case msg.LeaveRly:
		return dst, nil
	case msg.Find:
		if dst, err = appendSuffix(dst, p, m.Want); err != nil {
			return nil, err
		}
		if dst, err = appendRef(dst, p, m.Origin); err != nil {
			return nil, err
		}
		return appendOptID(dst, p, m.Avoid)
	case msg.FindRly:
		if dst, err = appendSuffix(dst, p, m.Want); err != nil {
			return nil, err
		}
		dst = append(dst, boolByte(m.Blocked))
		return appendNeighbor(dst, p, m.Found)
	case msg.Ping:
		dst = binary.AppendUvarint(dst, m.Seq)
		if dst, err = appendRef(dst, p, m.Origin); err != nil {
			return nil, err
		}
		return appendRef(dst, p, m.Target)
	case msg.Pong:
		return binary.AppendUvarint(dst, m.Seq), nil
	case msg.FailedNoti:
		return appendRef(dst, p, m.Failed)
	case msg.SyncReq:
		return appendBitVector(dst, m.Fill), nil
	case msg.SyncRly:
		if dst, err = appendSnapshot(dst, p, m.Table); err != nil {
			return nil, err
		}
		return appendBitVector(dst, m.Fill), nil
	case msg.SyncPush:
		return appendSnapshot(dst, p, m.Table)
	case msg.SamplePush:
		return dst, nil
	case msg.SamplePullReq:
		return dst, nil
	case msg.SamplePullRly:
		if len(m.Refs) > msg.MaxSampleRefs {
			return nil, fmt.Errorf("wire: sample reply with %d refs exceeds %d", len(m.Refs), msg.MaxSampleRefs)
		}
		dst = append(dst, byte(len(m.Refs)))
		for i, ref := range m.Refs {
			if ref.IsZero() {
				return nil, fmt.Errorf("wire: sample reply ref %d is zero", i)
			}
			if i > 0 && !m.Refs[i-1].ID.Less(ref.ID) {
				return nil, fmt.Errorf("wire: sample reply refs not strictly ascending at %d", i)
			}
			if dst, err = appendRef(dst, p, ref); err != nil {
				return nil, err
			}
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("wire: unknown message %T", env.Msg)
	}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendLevel(dst []byte, level int) ([]byte, error) {
	if level < 0 {
		return nil, fmt.Errorf("wire: negative level %d", level)
	}
	return binary.AppendUvarint(dst, uint64(level)), nil
}

func appendCoords(dst []byte, p id.Params, level, digit int, s table.State) ([]byte, error) {
	if level < 0 || level >= p.D || digit < 0 || digit >= p.B {
		return nil, fmt.Errorf("wire: coords (%d,%d) out of range for b=%d d=%d", level, digit, p.B, p.D)
	}
	if s != table.StateT && s != table.StateS {
		return nil, fmt.Errorf("wire: invalid state %d", s)
	}
	return append(dst, byte(level), byte(digit), byte(s)), nil
}

func appendRef(dst []byte, p id.Params, r table.Ref) ([]byte, error) {
	if r.IsZero() {
		return append(dst, 0), nil
	}
	if r.ID.Len() != p.D {
		return nil, fmt.Errorf("wire: ref ID %v has %d digits, want %d", r.ID, r.ID.Len(), p.D)
	}
	if len(r.Addr) > MaxAddr {
		return nil, fmt.Errorf("wire: ref address of %d bytes exceeds %d", len(r.Addr), MaxAddr)
	}
	dst = append(dst, 1)
	dst = r.ID.AppendRawDigits(dst)
	dst = binary.AppendUvarint(dst, uint64(len(r.Addr)))
	return append(dst, r.Addr...), nil
}

func appendOptID(dst []byte, p id.Params, x id.ID) ([]byte, error) {
	if x.IsNull() {
		return append(dst, 0), nil
	}
	if x.Len() != p.D {
		return nil, fmt.Errorf("wire: ID %v has %d digits, want %d", x, x.Len(), p.D)
	}
	return x.AppendRawDigits(append(dst, 1)), nil
}

func appendSuffix(dst []byte, p id.Params, s id.Suffix) ([]byte, error) {
	if s.Len() > p.D {
		return nil, fmt.Errorf("wire: suffix %v has %d digits, want at most %d", s, s.Len(), p.D)
	}
	dst = binary.AppendUvarint(dst, uint64(s.Len()))
	return s.AppendRawDigits(dst), nil
}

func appendNeighbor(dst []byte, p id.Params, n table.Neighbor) ([]byte, error) {
	if n.IsZero() {
		return append(dst, 0), nil
	}
	if n.ID.Len() != p.D {
		return nil, fmt.Errorf("wire: neighbor ID %v has %d digits, want %d", n.ID, n.ID.Len(), p.D)
	}
	if len(n.Addr) > MaxAddr {
		return nil, fmt.Errorf("wire: neighbor address of %d bytes exceeds %d", len(n.Addr), MaxAddr)
	}
	if n.State != table.StateT && n.State != table.StateS {
		return nil, fmt.Errorf("wire: neighbor state %d invalid", n.State)
	}
	dst = append(dst, 1)
	dst = n.ID.AppendRawDigits(dst)
	dst = binary.AppendUvarint(dst, uint64(len(n.Addr)))
	dst = append(dst, n.Addr...)
	return append(dst, byte(n.State)), nil
}

func appendSnapshot(dst []byte, p id.Params, s table.Snapshot) ([]byte, error) {
	if s.IsZero() {
		return append(dst, 0), nil
	}
	owner := s.Owner()
	if owner.Len() != p.D {
		return nil, fmt.Errorf("wire: table owner %v has %d digits, want %d", owner, owner.Len(), p.D)
	}
	dst = append(dst, 1)
	dst = owner.AppendRawDigits(dst)
	lo, hi := s.LevelRange()
	if hi < lo {
		// Present but empty level range: lo byte 0, hi+1 byte 0, no entries.
		return append(dst, 0, 0, 0), nil
	}
	if lo < 0 || hi >= p.D {
		return nil, fmt.Errorf("wire: table level range [%d,%d] out of bounds", lo, hi)
	}
	dst = append(dst, byte(lo), byte(hi+1))
	dst = binary.AppendUvarint(dst, uint64(s.FilledCount()))
	var err error
	s.ForEach(func(level, digit int, n table.Neighbor) {
		if err != nil {
			return
		}
		if len(n.Addr) > MaxAddr {
			err = fmt.Errorf("wire: table entry (%d,%d) address of %d bytes exceeds %d", level, digit, len(n.Addr), MaxAddr)
			return
		}
		if n.ID.Len() != p.D {
			err = fmt.Errorf("wire: table entry (%d,%d) ID %v has %d digits, want %d", level, digit, n.ID, n.ID.Len(), p.D)
			return
		}
		if n.State != table.StateT && n.State != table.StateS {
			err = fmt.Errorf("wire: table entry (%d,%d) state %d invalid", level, digit, n.State)
			return
		}
		dst = append(dst, byte(level), byte(digit))
		dst = n.ID.AppendRawDigits(dst)
		dst = binary.AppendUvarint(dst, uint64(len(n.Addr)))
		dst = append(dst, n.Addr...)
		dst = append(dst, byte(n.State))
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

func appendBitVector(dst []byte, v table.BitVector) []byte {
	dst = binary.AppendUvarint(dst, uint64(v.Len()))
	for i := 0; i < v.WordCount(); i++ {
		dst = binary.LittleEndian.AppendUint64(dst, v.Word(i))
	}
	return dst
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

// reader is a bounds-checked cursor over a payload slice. All methods
// return errors instead of panicking, whatever the input.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) remaining() int { return len(r.buf) - r.pos }

func (r *reader) u8() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, badf("truncated at byte %d", r.pos)
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// uvarint reads an unsigned varint, bounded to fit an int (lengths and
// counts are always compared against small limits by the caller).
func (r *reader) uvarint() (int, error) {
	v, err := r.uvarint64()
	if err != nil {
		return 0, err
	}
	if v > 1<<31 {
		return 0, badf("varint %d exceeds sane bounds", v)
	}
	return int(v), nil
}

func (r *reader) uvarint64() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, badf("bad varint at byte %d", r.pos)
	}
	// Canonical form only: a multi-byte varint whose final 7-bit group is
	// zero re-encodes shorter, which would break byte-identical round
	// trips (and gives hostile peers an encoding oracle).
	if n > 1 && r.buf[r.pos+n-1] == 0 {
		return 0, badf("non-minimal varint at byte %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, badf("%d bytes requested, %d remain", n, r.remaining())
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *reader) bool() (bool, error) {
	b, err := r.u8()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, badf("flag byte %d, want 0 or 1", b)
	}
}

// traceContext reads one v2 record trailer: a flags byte (0 =
// untraced, 1 = traced), then the 16-byte trace ID and 8-byte span ID
// when traced. Canonical form: flags above 1 and zero IDs under flags
// 1 are malformed (an untraced record has exactly one encoding — the
// lone 0 byte).
func (r *reader) traceContext() (trace.Context, error) {
	flags, err := r.u8()
	if err != nil {
		return trace.Context{}, err
	}
	switch flags {
	case 0:
		return trace.Context{}, nil
	case 1:
		raw, err := r.take(traceCtxLen)
		if err != nil {
			return trace.Context{}, err
		}
		var c trace.Context
		copy(c.Trace[:], raw[:traceIDLen])
		copy(c.Span[:], raw[traceIDLen:])
		if c.Trace.IsZero() || c.Span.IsZero() {
			return trace.Context{}, badf("traced record with zero trace or span ID")
		}
		return c, nil
	default:
		return trace.Context{}, badf("trace flags byte %d, want 0 or 1", flags)
	}
}

func (r *reader) id(p id.Params) (id.ID, error) {
	raw, err := r.take(p.D)
	if err != nil {
		return id.Null, err
	}
	x, err := id.FromRawDigits(p, raw)
	if err != nil {
		return id.Null, badf("%v", err)
	}
	return x, nil
}

func (r *reader) addr() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > MaxAddr {
		return "", badf("address of %d bytes exceeds %d", n, MaxAddr)
	}
	raw, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func (r *reader) ref(p id.Params) (table.Ref, error) {
	present, err := r.bool()
	if err != nil || !present {
		return table.Ref{}, err
	}
	x, err := r.id(p)
	if err != nil {
		return table.Ref{}, err
	}
	addr, err := r.addr()
	if err != nil {
		return table.Ref{}, err
	}
	return table.Ref{ID: x, Addr: addr}, nil
}

func (r *reader) optID(p id.Params) (id.ID, error) {
	present, err := r.bool()
	if err != nil || !present {
		return id.Null, err
	}
	return r.id(p)
}

func (r *reader) suffix(p id.Params) (id.Suffix, error) {
	n, err := r.uvarint()
	if err != nil {
		return id.EmptySuffix, err
	}
	if n > p.D {
		return id.EmptySuffix, badf("suffix of %d digits exceeds %d", n, p.D)
	}
	raw, err := r.take(n)
	if err != nil {
		return id.EmptySuffix, err
	}
	s, err := id.SuffixFromRawDigits(p, raw)
	if err != nil {
		return id.EmptySuffix, badf("%v", err)
	}
	return s, nil
}

func (r *reader) state() (table.State, error) {
	b, err := r.u8()
	if err != nil {
		return 0, err
	}
	if s := table.State(b); s == table.StateT || s == table.StateS {
		return s, nil
	}
	return 0, badf("state byte %d, want T or S", b)
}

func (r *reader) level(p id.Params) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n >= p.D {
		return 0, badf("level %d out of [0,%d)", n, p.D)
	}
	return n, nil
}

func (r *reader) neighbor(p id.Params) (table.Neighbor, error) {
	present, err := r.bool()
	if err != nil || !present {
		return table.Neighbor{}, err
	}
	x, err := r.id(p)
	if err != nil {
		return table.Neighbor{}, err
	}
	addr, err := r.addr()
	if err != nil {
		return table.Neighbor{}, err
	}
	s, err := r.state()
	if err != nil {
		return table.Neighbor{}, err
	}
	return table.Neighbor{ID: x, Addr: addr, State: s}, nil
}

func (r *reader) snapshot(p id.Params) (table.Snapshot, error) {
	present, err := r.bool()
	if err != nil || !present {
		return table.Snapshot{}, err
	}
	owner, err := r.id(p)
	if err != nil {
		return table.Snapshot{}, err
	}
	loByte, err := r.u8()
	if err != nil {
		return table.Snapshot{}, err
	}
	hiPlus1, err := r.u8()
	if err != nil {
		return table.Snapshot{}, err
	}
	count, err := r.uvarint()
	if err != nil {
		return table.Snapshot{}, err
	}
	lo, hi := int(loByte), int(hiPlus1)-1
	if hiPlus1 == 0 {
		if loByte != 0 || count != 0 {
			return table.Snapshot{}, badf("empty table range with lo=%d count=%d", loByte, count)
		}
		return table.NewSnapshot(p, owner, 0, -1, nil)
	}
	if lo >= p.D || hi >= p.D || lo > hi {
		return table.Snapshot{}, badf("table level range [%d,%d] out of bounds", lo, hi)
	}
	if count > (hi-lo+1)*p.B {
		return table.Snapshot{}, badf("table with %d entries exceeds %d", count, (hi-lo+1)*p.B)
	}
	entries := make(map[[2]int]table.Neighbor, count)
	lastIdx := -1
	for i := 0; i < count; i++ {
		level, err := r.u8()
		if err != nil {
			return table.Snapshot{}, err
		}
		digit, err := r.u8()
		if err != nil {
			return table.Snapshot{}, err
		}
		if int(level) < lo || int(level) > hi || int(digit) >= p.B {
			return table.Snapshot{}, badf("table entry (%d,%d) out of range", level, digit)
		}
		// Canonical order: strictly ascending by (level,digit). This also
		// rules out duplicate coordinates.
		idx := int(level)*p.B + int(digit)
		if idx <= lastIdx {
			return table.Snapshot{}, badf("table entry (%d,%d) out of order", level, digit)
		}
		lastIdx = idx
		x, err := r.id(p)
		if err != nil {
			return table.Snapshot{}, err
		}
		addr, err := r.addr()
		if err != nil {
			return table.Snapshot{}, err
		}
		s, err := r.state()
		if err != nil {
			return table.Snapshot{}, err
		}
		entries[[2]int{int(level), int(digit)}] = table.Neighbor{ID: x, Addr: addr, State: s}
	}
	snap, err := table.NewSnapshot(p, owner, lo, hi, entries)
	if err != nil {
		return table.Snapshot{}, badf("%v", err)
	}
	return snap, nil
}

func (r *reader) bitVector(p id.Params) (table.BitVector, error) {
	n, err := r.uvarint()
	if err != nil {
		return table.BitVector{}, err
	}
	if n == 0 {
		return table.BitVector{}, nil
	}
	if n > p.D*p.B {
		return table.BitVector{}, badf("fill vector of %d bits exceeds %d", n, p.D*p.B)
	}
	words := (n + 63) / 64
	v := table.NewBitVector(n)
	for i := 0; i < words; i++ {
		raw, err := r.take(8)
		if err != nil {
			return table.BitVector{}, err
		}
		w := binary.LittleEndian.Uint64(raw)
		// Canonical padding: bits beyond n in the final word must be zero,
		// or re-encoding would not reproduce the input.
		if i == words-1 && n%64 != 0 && w>>(n%64) != 0 {
			return table.BitVector{}, badf("fill vector carries bits beyond length %d", n)
		}
		v.SetWord(i, w)
	}
	return v, nil
}

func decodeBody(p id.Params, body []byte) (msg.Envelope, error) {
	r := reader{buf: body}
	kind, err := r.u8()
	if err != nil {
		return msg.Envelope{}, err
	}
	if kind == 0 || int(kind) > msg.NumTypes {
		return msg.Envelope{}, badf("unknown message kind %d", kind)
	}
	env := msg.Envelope{}
	if env.From, err = r.ref(p); err != nil {
		return msg.Envelope{}, err
	}
	if env.To, err = r.ref(p); err != nil {
		return msg.Envelope{}, err
	}
	switch msg.Type(kind) {
	case msg.TCpRst:
		m := msg.CpRst{}
		if m.Level, err = r.level(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TCpRly:
		m := msg.CpRly{}
		if m.Table, err = r.snapshot(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TJoinWait:
		env.Msg = msg.JoinWait{}
	case msg.TJoinWaitRly:
		m := msg.JoinWaitRly{}
		if m.R, err = decodeResult(&r); err != nil {
			return msg.Envelope{}, err
		}
		if m.U, err = r.ref(p); err != nil {
			return msg.Envelope{}, err
		}
		if m.Table, err = r.snapshot(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TJoinNoti:
		m := msg.JoinNoti{}
		if m.Table, err = r.snapshot(p); err != nil {
			return msg.Envelope{}, err
		}
		if m.FillVector, err = r.bitVector(p); err != nil {
			return msg.Envelope{}, err
		}
		if m.NotiLevel, err = r.level(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TJoinNotiRly:
		m := msg.JoinNotiRly{}
		if m.R, err = decodeResult(&r); err != nil {
			return msg.Envelope{}, err
		}
		if m.F, err = r.bool(); err != nil {
			return msg.Envelope{}, err
		}
		if m.Table, err = r.snapshot(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TInSysNoti:
		env.Msg = msg.InSysNoti{}
	case msg.TSpeNoti:
		m := msg.SpeNoti{}
		if m.X, err = r.ref(p); err != nil {
			return msg.Envelope{}, err
		}
		if m.Y, err = r.ref(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TSpeNotiRly:
		m := msg.SpeNotiRly{}
		if m.X, err = r.ref(p); err != nil {
			return msg.Envelope{}, err
		}
		if m.Y, err = r.ref(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TRvNghNoti:
		m := msg.RvNghNoti{}
		if m.Level, m.Digit, m.State, err = decodeCoords(&r, p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TRvNghNotiRly:
		m := msg.RvNghNotiRly{}
		if m.Level, m.Digit, m.State, err = decodeCoords(&r, p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TLeave:
		m := msg.Leave{}
		if m.Table, err = r.snapshot(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TLeaveRly:
		env.Msg = msg.LeaveRly{}
	case msg.TFind:
		m := msg.Find{}
		if m.Want, err = r.suffix(p); err != nil {
			return msg.Envelope{}, err
		}
		if m.Origin, err = r.ref(p); err != nil {
			return msg.Envelope{}, err
		}
		if m.Avoid, err = r.optID(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TFindRly:
		m := msg.FindRly{}
		if m.Want, err = r.suffix(p); err != nil {
			return msg.Envelope{}, err
		}
		if m.Blocked, err = r.bool(); err != nil {
			return msg.Envelope{}, err
		}
		if m.Found, err = r.neighbor(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TPing:
		m := msg.Ping{}
		if m.Seq, err = r.uvarint64(); err != nil {
			return msg.Envelope{}, err
		}
		if m.Origin, err = r.ref(p); err != nil {
			return msg.Envelope{}, err
		}
		if m.Target, err = r.ref(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TPong:
		m := msg.Pong{}
		if m.Seq, err = r.uvarint64(); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TFailedNoti:
		m := msg.FailedNoti{}
		if m.Failed, err = r.ref(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TSyncReq:
		m := msg.SyncReq{}
		if m.Fill, err = r.bitVector(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TSyncRly:
		m := msg.SyncRly{}
		if m.Table, err = r.snapshot(p); err != nil {
			return msg.Envelope{}, err
		}
		if m.Fill, err = r.bitVector(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TSyncPush:
		m := msg.SyncPush{}
		if m.Table, err = r.snapshot(p); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TSamplePush:
		env.Msg = msg.SamplePush{}
	case msg.TSamplePullReq:
		env.Msg = msg.SamplePullReq{}
	case msg.TSamplePullRly:
		m := msg.SamplePullRly{}
		count, err := r.u8()
		if err != nil {
			return msg.Envelope{}, err
		}
		if int(count) > msg.MaxSampleRefs {
			return msg.Envelope{}, badf("sample reply with %d refs exceeds %d", count, msg.MaxSampleRefs)
		}
		for i := 0; i < int(count); i++ {
			ref, err := r.ref(p)
			if err != nil {
				return msg.Envelope{}, err
			}
			if ref.IsZero() {
				return msg.Envelope{}, badf("sample reply ref %d is zero", i)
			}
			// Canonical form: strictly ascending IDs, so every reference
			// list has exactly one encoding and duplicates cannot hide.
			if i > 0 && !m.Refs[i-1].ID.Less(ref.ID) {
				return msg.Envelope{}, badf("sample reply refs not strictly ascending at %d", i)
			}
			m.Refs = append(m.Refs, ref)
		}
		env.Msg = m
	}
	if r.remaining() != 0 {
		return msg.Envelope{}, badf("%d trailing bytes in %v body", r.remaining(), msg.Type(kind))
	}
	return env, nil
}

func decodeResult(r *reader) (msg.Result, error) {
	b, err := r.u8()
	if err != nil {
		return 0, err
	}
	if v := msg.Result(b); v == msg.Negative || v == msg.Positive {
		return v, nil
	}
	return 0, badf("result byte %d, want negative or positive", b)
}

func decodeCoords(r *reader, p id.Params) (level, digit int, s table.State, err error) {
	lb, err := r.u8()
	if err != nil {
		return 0, 0, 0, err
	}
	db, err := r.u8()
	if err != nil {
		return 0, 0, 0, err
	}
	if int(lb) >= p.D || int(db) >= p.B {
		return 0, 0, 0, badf("coords (%d,%d) out of range for b=%d d=%d", lb, db, p.B, p.D)
	}
	s, err = r.state()
	if err != nil {
		return 0, 0, 0, err
	}
	return int(lb), int(db), s, nil
}
