package overlay

import (
	"math/rand"
	"testing"
	"time"

	"hypercube/internal/antientropy"
	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/table"
)

func partitionConfig() Config {
	return Config{
		Params:  id.Params{B: 4, D: 4},
		Latency: ConstantLatency(5 * time.Millisecond),
		Opts: core.Options{Timeouts: core.Timeouts{
			RetryAfter:  300 * time.Millisecond,
			MaxAttempts: 4,
			RepairAfter: 400 * time.Millisecond,
		}},
		Liveness: &liveness.Config{
			ProbeInterval:  100 * time.Millisecond,
			ProbeTimeout:   400 * time.Millisecond,
			SuspectAfter:   3,
			IndirectProbes: 2,
			ConfirmRounds:  3,
			// Halving the network makes ~50% of every node's targets
			// unreachable; 0.2 trips well below that while staying above
			// any plausible single-crash fraction in a 16-node table.
			PartitionThreshold: 0.2,
		},
		AntiEntropy:  &antientropy.Config{Interval: time.Second},
		TickInterval: 50 * time.Millisecond,
	}
}

// TestPartitionSoak is the partition-tolerance tentpole scenario: a
// 16-node network is split into two halves long enough for every
// failure-detector timeout to fire many times over, while a new node
// joins on one side. The halves must NOT declare each other dead
// (partition-aware liveness holds the declarations), and after the heal
// the sides — whose tables have genuinely diverged, since one half never
// heard of the joiner — must reconverge to Definition 3.8 consistency
// through anti-entropy rounds alone, with no oracle and no manual
// repair. The whole run must produce zero failure declarations: nothing
// ever crashed.
func TestPartitionSoak(t *testing.T) {
	cfg := partitionConfig()
	rng := rand.New(rand.NewSource(7))
	net := New(cfg)
	taken := make(map[id.ID]bool)
	refs := RandomRefs(cfg.Params, 16, rng, taken)
	net.BuildDirect(refs, rng)

	sideA := make([]id.ID, 0, 8)
	sideB := make([]id.ID, 0, 8)
	for i, r := range refs {
		if i < 8 {
			sideA = append(sideA, r.ID)
		} else {
			sideB = append(sideB, r.ID)
		}
	}

	// Healthy warm-up, then the split.
	net.RunFor(2 * time.Second)
	if st := net.LivenessStats(); st.Declared != 0 {
		t.Fatalf("declarations before the partition: %+v", st)
	}
	// A node joins through side A while the network is split. Its ID is
	// engineered for two properties: (a) it shares its rightmost digit
	// with the gateway, so the copy phase of the join never needs side B,
	// and (b) its two-digit suffix is novel — no member shares it — so
	// every side-B node sharing the rightmost digit has an empty slot
	// only the joiner can fill. Side B is then GUARANTEED to diverge: it
	// misses a live member that only anti-entropy will deliver, because
	// the join protocol never revisits settled tables.
	joiner := divergentJoiner(t, cfg.Params, refs, taken)
	net.Partition(append(sideA, joiner.ID), sideB)
	jm := net.ScheduleJoin(joiner, refs[0], 4*time.Second, refs[1], refs[2])

	net.RunFor(20 * time.Second) // 18s split: dozens of probe timeouts per target

	if st := net.LivenessStats(); st.Declared != 0 {
		t.Fatalf("false-positive declarations during the partition: %+v", st)
	}
	if st := net.LivenessStats(); st.PartitionsEntered < 12 || st.DeclarationsHeld == 0 {
		t.Fatalf("partition mode barely engaged: %+v", st)
	}
	if got := net.PartitionedCount(); got < 12 {
		t.Fatalf("only %d probers in partition mode at peak, want >= 12", got)
	}
	if net.PartitionDropped() == 0 {
		t.Fatal("no messages were cut by the partition")
	}
	if !jm.IsSNode() {
		t.Fatalf("joiner stuck in %v: a partitioned side must still admit nodes", jm.Status())
	}

	// Heal. The sides must actually have diverged (that is the point of
	// the engineered joiner), then reconverge within a bounded number of
	// anti-entropy rounds.
	net.Heal()
	if len(net.CheckConsistency()) == 0 {
		t.Fatal("no divergence at heal time — the scenario lost its teeth")
	}
	const maxRounds = 25
	rounds := 0
	for ; rounds < maxRounds && len(net.CheckConsistency()) != 0; rounds++ {
		net.RunFor(cfg.AntiEntropy.Interval)
	}
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("still %d violations %d rounds after heal, first: %v", len(v), rounds, v[0])
	}
	t.Logf("reconverged %d anti-entropy rounds after heal (pulled %d, purged %d)",
		rounds, net.AntiEntropyStats().Pulled, net.AntiEntropyStats().Purged)

	st := net.LivenessStats()
	if st.Declared != 0 {
		t.Fatalf("declarations after heal: %+v — nothing ever crashed", st)
	}
	if st.PartitionsExited < 12 {
		t.Fatalf("probers stuck in partition mode after heal: %+v", st)
	}
	if net.PartitionedCount() != 0 {
		t.Fatalf("%d probers still partitioned after heal", net.PartitionedCount())
	}
	if net.AntiEntropyStats().Pulled == 0 {
		t.Fatal("anti-entropy pulled nothing, yet the sides had diverged")
	}
	if net.Size() != 17 {
		t.Fatalf("Size = %d, want 17 — no node may be lost to a partition", net.Size())
	}
}

// divergentJoiner constructs a fresh node ID whose rightmost digit
// matches the gateway refs[0] (so the join's copy phase resolves inside
// the gateway's side) and whose two-digit suffix no existing member has
// (so every node sharing the rightmost digit — in particular at least
// one node of side B, refs[8:] — has an empty level-1 slot only this
// node can fill). With the chosen seed both conditions are satisfiable;
// the test fails loudly if a seed change breaks that.
func divergentJoiner(t *testing.T, p id.Params, refs []table.Ref, taken map[id.ID]bool) table.Ref {
	t.Helper()
	y0 := refs[0].ID.Digit(0)
	sideBShares := false
	for _, r := range refs[8:] {
		if r.ID.Digit(0) == y0 {
			sideBShares = true
			break
		}
	}
	if !sideBShares {
		t.Fatalf("no side-B node shares the gateway's rightmost digit %d; pick another seed", y0)
	}
	for y1 := 0; y1 < p.B; y1++ {
		patternUsed := false
		for _, r := range refs {
			if r.ID.Digit(0) == y0 && r.ID.Digit(1) == y1 {
				patternUsed = true
				break
			}
		}
		if patternUsed {
			continue
		}
		// Enumerate the free high digits until an unused ID appears.
		for c := 0; c < 1<<(2*(p.D-2)); c++ {
			digits := make([]int, p.D) // digits[i] = i-th digit from the right
			digits[0], digits[1] = y0, y1
			rest := c
			for i := 2; i < p.D; i++ {
				digits[i] = rest % p.B
				rest /= p.B
			}
			s := make([]byte, p.D)
			for i := 0; i < p.D; i++ {
				s[p.D-1-i] = "0123456789abcdef"[digits[i]]
			}
			x := id.MustParse(p, string(s))
			if !taken[x] {
				taken[x] = true
				return table.Ref{ID: x, Addr: "sim://" + string(s)}
			}
		}
	}
	t.Fatal("every two-digit suffix over the gateway's rightmost digit is taken; pick another seed")
	return table.Ref{}
}

// TestAntiEntropyRepairsInjectedDivergence isolates the repair half:
// with no liveness involved, entries blanked behind the protocol's back
// (as lost notifications or botched repairs would) are refilled by
// anti-entropy rounds alone.
func TestAntiEntropyRepairsInjectedDivergence(t *testing.T) {
	cfg := Config{
		Params:       id.Params{B: 4, D: 4},
		Latency:      ConstantLatency(5 * time.Millisecond),
		AntiEntropy:  &antientropy.Config{Interval: time.Second},
		TickInterval: 100 * time.Millisecond,
	}
	rng := rand.New(rand.NewSource(11))
	net := New(cfg)
	refs := RandomRefs(cfg.Params, 16, rng, nil)
	net.BuildDirect(refs, rng)

	blanked := 0
	for _, r := range refs[:8] {
		tbl, _ := net.TableOf(r.ID)
		var coords [][2]int
		tbl.ForEach(func(level, digit int, nb table.Neighbor) {
			if nb.ID != r.ID {
				coords = append(coords, [2]int{level, digit})
			}
		})
		if len(coords) == 0 {
			continue
		}
		c := coords[rng.Intn(len(coords))]
		tbl.Set(c[0], c[1], table.Neighbor{})
		blanked++
	}
	if blanked == 0 || len(net.CheckConsistency()) == 0 {
		t.Fatalf("divergence injection failed (%d blanked)", blanked)
	}

	const maxRounds = 15
	rounds := 0
	for ; rounds < maxRounds && len(net.CheckConsistency()) != 0; rounds++ {
		net.RunFor(cfg.AntiEntropy.Interval)
	}
	if v := net.CheckConsistency(); len(v) != 0 {
		t.Fatalf("%d violations after %d rounds, first: %v", len(v), rounds, v[0])
	}
	if net.AntiEntropyStats().Pulled < blanked {
		t.Fatalf("pulled %d < %d blanked entries", net.AntiEntropyStats().Pulled, blanked)
	}
	t.Logf("repaired %d blanked entries in %d rounds", blanked, rounds)
}
