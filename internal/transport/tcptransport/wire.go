// Package tcptransport runs protocol nodes over real TCP sockets with a
// gob-encoded wire format: each node listens on an address, dials peers
// on demand, and drives the same core.Machine as the simulator and the
// in-process runtime. It exists to demonstrate (and test) that the
// protocol implementation is transport-agnostic end to end.
package tcptransport

import (
	"fmt"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
	"hypercube/internal/trace"
)

// wireRef is the encoded form of a table.Ref.
type wireRef struct {
	ID   string
	Addr string
}

func encodeRef(r table.Ref) wireRef {
	if r.IsZero() {
		return wireRef{}
	}
	return wireRef{ID: r.ID.String(), Addr: r.Addr}
}

// maxWireAddr bounds any transport address accepted off the wire;
// addresses are host:port strings, so anything longer is hostile.
const maxWireAddr = 256

func decodeRef(p id.Params, w wireRef) (table.Ref, error) {
	if w.ID == "" {
		return table.Ref{}, nil
	}
	x, err := id.Parse(p, w.ID)
	if err != nil {
		return table.Ref{}, fmt.Errorf("tcptransport: bad ref: %w", err)
	}
	if len(w.Addr) > maxWireAddr {
		return table.Ref{}, fmt.Errorf("tcptransport: ref address of %d bytes exceeds %d", len(w.Addr), maxWireAddr)
	}
	return table.Ref{ID: x, Addr: w.Addr}, nil
}

// wireEntry is one non-empty table entry on the wire.
type wireEntry struct {
	Level, Digit int
	ID, Addr     string
	State        uint8
}

// wireTable is the encoded form of a table.Snapshot.
type wireTable struct {
	Owner  string
	Lo, Hi int
	Filled []wireEntry
}

func encodeTable(s table.Snapshot) (wireTable, bool) {
	if s.IsZero() {
		return wireTable{}, false
	}
	lo, hi := s.LevelRange()
	w := wireTable{Owner: s.Owner().String(), Lo: lo, Hi: hi}
	s.ForEach(func(level, digit int, n table.Neighbor) {
		w.Filled = append(w.Filled, wireEntry{
			Level: level, Digit: digit,
			ID: n.ID.String(), Addr: n.Addr, State: uint8(n.State),
		})
	})
	return w, true
}

func decodeTable(p id.Params, w wireTable) (table.Snapshot, error) {
	owner, err := id.Parse(p, w.Owner)
	if err != nil {
		return table.Snapshot{}, fmt.Errorf("tcptransport: bad table owner: %w", err)
	}
	if len(w.Filled) > p.D*p.B {
		return table.Snapshot{}, fmt.Errorf("tcptransport: table with %d entries exceeds %d", len(w.Filled), p.D*p.B)
	}
	entries := make(map[[2]int]table.Neighbor, len(w.Filled))
	for _, e := range w.Filled {
		if e.Level < 0 || e.Level >= p.D || e.Digit < 0 || e.Digit >= p.B {
			return table.Snapshot{}, fmt.Errorf("tcptransport: table entry (%d,%d) out of range", e.Level, e.Digit)
		}
		if s := table.State(e.State); s != table.StateT && s != table.StateS {
			return table.Snapshot{}, fmt.Errorf("tcptransport: table entry (%d,%d) has invalid state %d", e.Level, e.Digit, e.State)
		}
		if len(e.Addr) > maxWireAddr {
			return table.Snapshot{}, fmt.Errorf("tcptransport: table entry (%d,%d) address of %d bytes exceeds %d", e.Level, e.Digit, len(e.Addr), maxWireAddr)
		}
		x, err := id.Parse(p, e.ID)
		if err != nil {
			return table.Snapshot{}, fmt.Errorf("tcptransport: bad table entry: %w", err)
		}
		entries[[2]int{e.Level, e.Digit}] = table.Neighbor{ID: x, Addr: e.Addr, State: table.State(e.State)}
	}
	return table.NewSnapshot(p, owner, w.Lo, w.Hi, entries)
}

// decodeFill validates a wire bit vector: a hostile FillLen would
// otherwise size an allocation, and a fill vector is only ever the d×b
// table-fill bitmap.
func decodeFill(p id.Params, words []uint64, n int) (table.BitVector, error) {
	if n <= 0 {
		return table.BitVector{}, nil
	}
	if n > p.D*p.B {
		return table.BitVector{}, fmt.Errorf("tcptransport: fill vector of %d bits exceeds %d", n, p.D*p.B)
	}
	// Exactly ⌈n/64⌉ words: extra words would smuggle bytes past the
	// bit-length check, and missing words would silently zero-extend — a
	// truncated fill bitmap decoding as "mostly empty" makes the joiner
	// re-request levels it already holds (and, worse, trust a hostile
	// peer's claim that nothing is filled).
	if want := (n + 63) / 64; len(words) != want {
		return table.BitVector{}, fmt.Errorf("tcptransport: fill vector carries %d words, want %d", len(words), want)
	}
	return table.BitVectorFromWords(words, n), nil
}

// wireEnvelope is the single frame type exchanged on connections.
type wireEnvelope struct {
	From, To wireRef
	Kind     uint8

	// Scalar payload fields, used per message kind.
	R         uint8
	F         bool
	State     uint8
	Level     int
	Digit     int
	NotiLevel int
	U, X, Y   wireRef

	HasTable bool
	Table    wireTable
	Fill     []uint64
	FillLen  int

	// §7-extension fields.
	Want    string
	Found   wireEntry
	Blocked bool
	Avoid   string

	// Liveness probe sequence number (Ping/Pong).
	Seq uint64

	// Peer-sampling view (SamplePullRly).
	Refs []wireRef

	// Causal trace context (nil when untraced): 16-byte trace ID plus
	// 8-byte span ID. Gob decoders that predate these fields skip them,
	// so traced gob traffic still interops with v1-era nodes.
	TraceID, SpanID []byte
}

// encodeEnvelope flattens a protocol envelope into its wire form.
func encodeEnvelope(env msg.Envelope) (wireEnvelope, error) {
	w := wireEnvelope{
		From: encodeRef(env.From),
		To:   encodeRef(env.To),
		Kind: uint8(env.Msg.Type()),
	}
	if c := env.Trace; c.Sampled() {
		w.TraceID, w.SpanID = c.Trace[:], c.Span[:]
	}
	switch m := env.Msg.(type) {
	case msg.CpRst:
		w.Level = m.Level
	case msg.CpRly:
		w.Table, w.HasTable = encodeTable(m.Table)
	case msg.JoinWait:
	case msg.JoinWaitRly:
		w.R = uint8(m.R)
		w.U = encodeRef(m.U)
		w.Table, w.HasTable = encodeTable(m.Table)
	case msg.JoinNoti:
		w.Table, w.HasTable = encodeTable(m.Table)
		w.NotiLevel = m.NotiLevel
		if m.FillVector.Len() > 0 {
			w.Fill = m.FillVector.Words()
			w.FillLen = m.FillVector.Len()
		}
	case msg.JoinNotiRly:
		w.R = uint8(m.R)
		w.F = m.F
		w.Table, w.HasTable = encodeTable(m.Table)
	case msg.InSysNoti:
	case msg.SpeNoti:
		w.X = encodeRef(m.X)
		w.Y = encodeRef(m.Y)
	case msg.SpeNotiRly:
		w.X = encodeRef(m.X)
		w.Y = encodeRef(m.Y)
	case msg.RvNghNoti:
		w.Level, w.Digit, w.State = m.Level, m.Digit, uint8(m.State)
	case msg.RvNghNotiRly:
		w.Level, w.Digit, w.State = m.Level, m.Digit, uint8(m.State)
	case msg.Leave:
		w.Table, w.HasTable = encodeTable(m.Table)
	case msg.LeaveRly:
	case msg.Find:
		w.Want = m.Want.String()
		w.X = encodeRef(m.Origin)
		if !m.Avoid.IsNull() {
			w.Avoid = m.Avoid.String()
		}
	case msg.FindRly:
		w.Want = m.Want.String()
		w.Blocked = m.Blocked
		if !m.Found.IsZero() {
			w.Found = wireEntry{ID: m.Found.ID.String(), Addr: m.Found.Addr, State: uint8(m.Found.State)}
		}
	case msg.Ping:
		w.Seq = m.Seq
		w.X = encodeRef(m.Origin)
		w.Y = encodeRef(m.Target)
	case msg.Pong:
		w.Seq = m.Seq
	case msg.FailedNoti:
		w.X = encodeRef(m.Failed)
	case msg.SyncReq:
		if m.Fill.Len() > 0 {
			w.Fill = m.Fill.Words()
			w.FillLen = m.Fill.Len()
		}
	case msg.SyncRly:
		w.Table, w.HasTable = encodeTable(m.Table)
		if m.Fill.Len() > 0 {
			w.Fill = m.Fill.Words()
			w.FillLen = m.Fill.Len()
		}
	case msg.SyncPush:
		w.Table, w.HasTable = encodeTable(m.Table)
	case msg.SamplePush:
	case msg.SamplePullReq:
	case msg.SamplePullRly:
		for _, r := range m.Refs {
			w.Refs = append(w.Refs, encodeRef(r))
		}
	default:
		return wireEnvelope{}, fmt.Errorf("tcptransport: unknown message %T", env.Msg)
	}
	return w, nil
}

// decodeEnvelope reverses encodeEnvelope.
func decodeEnvelope(p id.Params, w wireEnvelope) (msg.Envelope, error) {
	from, err := decodeRef(p, w.From)
	if err != nil {
		return msg.Envelope{}, err
	}
	to, err := decodeRef(p, w.To)
	if err != nil {
		return msg.Envelope{}, err
	}
	env := msg.Envelope{From: from, To: to}
	if len(w.TraceID) > 0 || len(w.SpanID) > 0 {
		var c trace.Context
		if len(w.TraceID) != len(c.Trace) || len(w.SpanID) != len(c.Span) {
			return msg.Envelope{}, fmt.Errorf("tcptransport: trace context of %d+%d bytes, want %d+%d",
				len(w.TraceID), len(w.SpanID), len(c.Trace), len(c.Span))
		}
		copy(c.Trace[:], w.TraceID)
		copy(c.Span[:], w.SpanID)
		if !c.Sampled() || c.Span.IsZero() {
			return msg.Envelope{}, fmt.Errorf("tcptransport: trace context with zero trace or span ID")
		}
		env.Trace = c
	}

	var snap table.Snapshot
	if w.HasTable {
		snap, err = decodeTable(p, w.Table)
		if err != nil {
			return msg.Envelope{}, err
		}
	}
	switch msg.Type(w.Kind) {
	case msg.TCpRst:
		env.Msg = msg.CpRst{Level: w.Level}
	case msg.TCpRly:
		env.Msg = msg.CpRly{Table: snap}
	case msg.TJoinWait:
		env.Msg = msg.JoinWait{}
	case msg.TJoinWaitRly:
		u, err := decodeRef(p, w.U)
		if err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = msg.JoinWaitRly{R: msg.Result(w.R), U: u, Table: snap}
	case msg.TJoinNoti:
		m := msg.JoinNoti{Table: snap, NotiLevel: w.NotiLevel}
		if m.FillVector, err = decodeFill(p, w.Fill, w.FillLen); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TJoinNotiRly:
		env.Msg = msg.JoinNotiRly{R: msg.Result(w.R), F: w.F, Table: snap}
	case msg.TInSysNoti:
		env.Msg = msg.InSysNoti{}
	case msg.TSpeNoti, msg.TSpeNotiRly:
		x, err := decodeRef(p, w.X)
		if err != nil {
			return msg.Envelope{}, err
		}
		y, err := decodeRef(p, w.Y)
		if err != nil {
			return msg.Envelope{}, err
		}
		if msg.Type(w.Kind) == msg.TSpeNoti {
			env.Msg = msg.SpeNoti{X: x, Y: y}
		} else {
			env.Msg = msg.SpeNotiRly{X: x, Y: y}
		}
	case msg.TRvNghNoti:
		env.Msg = msg.RvNghNoti{Level: w.Level, Digit: w.Digit, State: table.State(w.State)}
	case msg.TRvNghNotiRly:
		env.Msg = msg.RvNghNotiRly{Level: w.Level, Digit: w.Digit, State: table.State(w.State)}
	case msg.TLeave:
		env.Msg = msg.Leave{Table: snap}
	case msg.TLeaveRly:
		env.Msg = msg.LeaveRly{}
	case msg.TFind:
		want, err := id.ParseSuffix(p, w.Want)
		if err != nil {
			return msg.Envelope{}, fmt.Errorf("tcptransport: bad find suffix: %w", err)
		}
		origin, err := decodeRef(p, w.X)
		if err != nil {
			return msg.Envelope{}, err
		}
		m := msg.Find{Want: want, Origin: origin}
		if w.Avoid != "" {
			avoid, err := id.Parse(p, w.Avoid)
			if err != nil {
				return msg.Envelope{}, fmt.Errorf("tcptransport: bad avoid id: %w", err)
			}
			m.Avoid = avoid
		}
		env.Msg = m
	case msg.TFindRly:
		want, err := id.ParseSuffix(p, w.Want)
		if err != nil {
			return msg.Envelope{}, fmt.Errorf("tcptransport: bad findrly suffix: %w", err)
		}
		m := msg.FindRly{Want: want, Blocked: w.Blocked}
		if w.Found.ID != "" {
			fid, err := id.Parse(p, w.Found.ID)
			if err != nil {
				return msg.Envelope{}, fmt.Errorf("tcptransport: bad found id: %w", err)
			}
			// Found feeds table repair directly, so it gets the same
			// boundary checks as any table entry: a hostile address or
			// state must not ride in on a FindRly.
			if len(w.Found.Addr) > maxWireAddr {
				return msg.Envelope{}, fmt.Errorf("tcptransport: found address of %d bytes exceeds %d", len(w.Found.Addr), maxWireAddr)
			}
			if s := table.State(w.Found.State); s != table.StateT && s != table.StateS {
				return msg.Envelope{}, fmt.Errorf("tcptransport: found entry has invalid state %d", w.Found.State)
			}
			m.Found = table.Neighbor{ID: fid, Addr: w.Found.Addr, State: table.State(w.Found.State)}
		}
		env.Msg = m
	case msg.TPing:
		origin, err := decodeRef(p, w.X)
		if err != nil {
			return msg.Envelope{}, err
		}
		target, err := decodeRef(p, w.Y)
		if err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = msg.Ping{Seq: w.Seq, Origin: origin, Target: target}
	case msg.TPong:
		env.Msg = msg.Pong{Seq: w.Seq}
	case msg.TFailedNoti:
		failed, err := decodeRef(p, w.X)
		if err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = msg.FailedNoti{Failed: failed}
	case msg.TSyncReq:
		m := msg.SyncReq{}
		if m.Fill, err = decodeFill(p, w.Fill, w.FillLen); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TSyncRly:
		m := msg.SyncRly{Table: snap}
		if m.Fill, err = decodeFill(p, w.Fill, w.FillLen); err != nil {
			return msg.Envelope{}, err
		}
		env.Msg = m
	case msg.TSyncPush:
		env.Msg = msg.SyncPush{Table: snap}
	case msg.TSamplePush:
		env.Msg = msg.SamplePush{}
	case msg.TSamplePullReq:
		env.Msg = msg.SamplePullReq{}
	case msg.TSamplePullRly:
		if len(w.Refs) > msg.MaxSampleRefs {
			return msg.Envelope{}, fmt.Errorf("tcptransport: sample reply with %d refs exceeds %d", len(w.Refs), msg.MaxSampleRefs)
		}
		m := msg.SamplePullRly{}
		for i, wr := range w.Refs {
			r, err := decodeRef(p, wr)
			if err != nil {
				return msg.Envelope{}, err
			}
			if r.IsZero() {
				return msg.Envelope{}, fmt.Errorf("tcptransport: sample reply ref %d is zero", i)
			}
			m.Refs = append(m.Refs, r)
		}
		env.Msg = m
	default:
		return msg.Envelope{}, fmt.Errorf("tcptransport: unknown wire kind %d", w.Kind)
	}
	return env, nil
}
