// Command topostat generates a transit-stub topology (the GT-ITM
// substitute used by the simulations) and prints its structure and
// host-to-host latency statistics.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hypercube/internal/topology"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "generator seed")
		hosts = flag.Int("hosts", 8192, "end hosts to attach")
		pairs = flag.Int("pairs", 20000, "host pairs to sample for latency stats")
		small = flag.Bool("small", false, "generate the reduced test-scale topology")
	)
	flag.Parse()

	cfg := topology.Default8320(*seed)
	if *small {
		cfg = topology.Small(*seed)
	}
	topo, err := topology.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topostat: %v\n", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	topo.AttachHosts(*hosts, rng)
	st := topo.SampleStats(*pairs, rng)

	fmt.Printf("transit-stub topology (seed %d)\n", *seed)
	fmt.Printf("  routers:          %d\n", st.Routers)
	fmt.Printf("  transit routers:  %d\n", st.TransitRouters)
	fmt.Printf("  stub domains:     %d\n", st.Stubs)
	fmt.Printf("  links:            %d\n", st.Edges)
	fmt.Printf("  end hosts:        %d\n", st.Hosts)
	fmt.Printf("  mean host-host latency: %v (over %d sampled pairs)\n", st.MeanHostLatency, st.SampledPairs)
	fmt.Printf("  max  host-host latency: %v\n", st.MaxHostLatency)
}
