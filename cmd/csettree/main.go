// Command csettree reproduces Figure 2 of Liu & Lam (ICDCS 2003): the
// C-set tree template C(V,W) for the §3.3 example (b=8, d=5, W = {10261,
// 47051, 00261} joining V = {72430, 10353, 62332, 13141, 31701}), and a
// realization cset(V,W) obtained by actually running the join protocol.
// With -v and -w flags, arbitrary scenarios can be inspected.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"hypercube/internal/cset"
	"hypercube/internal/id"
	"hypercube/internal/netcheck"
	"hypercube/internal/overlay"
	"hypercube/internal/table"
)

func main() {
	var (
		b     = flag.Int("b", 8, "digit base")
		d     = flag.Int("d", 5, "digits per ID")
		vList = flag.String("v", "72430,10353,62332,13141,31701", "existing node IDs, comma separated")
		wList = flag.String("w", "10261,47051,00261", "joining node IDs, comma separated")
		seed  = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	p := id.Params{B: *b, D: *d}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "csettree: %v\n", err)
		os.Exit(1)
	}
	v, err := parseIDs(p, *vList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csettree: -v: %v\n", err)
		os.Exit(1)
	}
	w, err := parseIDs(p, *wList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csettree: -w: %v\n", err)
		os.Exit(1)
	}

	// Group joiners by notification suffix: one C-set tree per group.
	reg := netcheck.NewSuffixRegistry(p, v)
	groups := make(map[id.Suffix][]id.ID)
	for _, x := range w {
		omega := cset.NotifySuffix(p, reg, x)
		groups[omega] = append(groups[omega], x)
		fmt.Printf("node %v: notification set V_%v\n", x, omega)
	}

	// Run the actual join protocol to realize the trees.
	rng := rand.New(rand.NewSource(*seed))
	net := overlay.New(overlay.Config{
		Params:  p,
		Latency: overlay.HashedUniformLatency(5*time.Millisecond, 80*time.Millisecond, *seed),
	})
	vRefs := make([]table.Ref, len(v))
	for i, x := range v {
		vRefs[i] = table.Ref{ID: x, Addr: "sim://" + x.String()}
	}
	net.BuildDirect(vRefs, rng)
	for _, x := range w {
		net.ScheduleJoin(table.Ref{ID: x, Addr: "sim://" + x.String()}, vRefs[rng.Intn(len(vRefs))], 0)
	}
	net.Run()
	if violations := net.CheckConsistency(); len(violations) != 0 {
		fmt.Fprintf(os.Stderr, "csettree: network inconsistent after joins: %v\n", violations[0])
		os.Exit(1)
	}

	for omega, group := range groups {
		template := cset.Template(p, group, omega)
		realized := cset.Realized(p, v, group, omega, net.Tables())
		fmt.Printf("\n== C-set tree rooted at V_%v ==\n", omega)
		fmt.Println("template C(V,W):")
		fmt.Print(indent(template.String()))
		fmt.Println("realized cset(V,W) after protocol run:")
		fmt.Print(indent(realized.String()))
		problems := cset.VerifyConditions(p, template, realized, v, group, net.Tables())
		if len(problems) == 0 {
			fmt.Println("conditions (1), (2), (3) of §3.3: satisfied")
		} else {
			for _, pr := range problems {
				fmt.Printf("VIOLATED %v\n", pr)
			}
			os.Exit(1)
		}
	}
}

func parseIDs(p id.Params, list string) ([]id.ID, error) {
	var out []id.ID
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		x, err := id.Parse(p, s)
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no IDs in %q", list)
	}
	return out, nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}
