package liveness

// Tests for the adaptive-timeout (gray-failure) extension: per-peer
// probe budgets from the RTT estimator, accrual suspicion, late-pong
// learning — plus the fixed-mode overlap invariant they must not
// disturb.

import (
	"testing"
	"time"

	"hypercube/internal/msg"
	"hypercube/internal/rtt"
	"hypercube/internal/table"
)

// runDelayed drives one prober under a virtual clock, delivering each
// probe's replies after a caller-chosen delay. respond sees every
// envelope the prober emits and returns the replies plus the delay
// before they arrive (negative delay = blackhole). The prober's clock
// is wired to the loop's virtual time, so RTT samples are exact.
func runDelayed(p *Prober, until time.Duration, respond func(now time.Duration, env msg.Envelope) ([]msg.Envelope, time.Duration)) (declared []table.Ref, declaredAt []time.Duration) {
	type timed struct {
		at  time.Duration
		env msg.Envelope
	}
	var queue []timed
	now := time.Duration(0)
	p.SetClock(func() time.Duration { return now })
	const step = 25 * time.Millisecond
	for ; now <= until; now += step {
		keep := queue[:0]
		for _, q := range queue {
			if q.at <= now {
				p.HandleMessage(q.env)
			} else {
				keep = append(keep, q)
			}
		}
		queue = keep
		out, dec, _ := p.Tick(now)
		for _, d := range dec {
			declared = append(declared, d)
			declaredAt = append(declaredAt, now)
		}
		for _, env := range out {
			replies, d := respond(now, env)
			if d < 0 {
				continue
			}
			for _, r := range replies {
				queue = append(queue, timed{at: now + d, env: r})
			}
		}
	}
	return declared, declaredAt
}

// TestOverlapMissAccountingInvariant pins the ProbeTimeout (1s) vs
// ProbeInterval (250ms) interaction from the defaults: the pending==0
// guard in Tick means routine probes to a silent peer never overlap in
// inflight, so misses accrue at exactly one per ProbeTimeout — not one
// per ProbeInterval. Four-fold faster intervals must not quadruple the
// evidence against a slow peer.
func TestOverlapMissAccountingInvariant(t *testing.T) {
	cfg := Config{
		ProbeInterval:  250 * time.Millisecond,
		ProbeTimeout:   time.Second,
		SuspectAfter:   4,
		IndirectProbes: 1,
		ConfirmRounds:  2,
	}
	self := mkRef(t, "0000")
	a := mkRef(t, "1111")
	p := NewProber(cfg, self)
	p.SetTargets([]table.Ref{a})

	maxPending := 0
	for now := time.Duration(0); now < 3900*time.Millisecond; now += 50 * time.Millisecond {
		p.Tick(now)
		tgt := p.targets[a.ID]
		if tgt == nil {
			t.Fatalf("target vanished at %v", now)
		}
		if tgt.pending > maxPending {
			maxPending = tgt.pending
		}
	}
	if maxPending != 1 {
		t.Fatalf("routine probes overlapped: max pending = %d, want 1", maxPending)
	}
	// Probes at 0s, 1s, 2s, 3s; misses charged at 1s, 2s, 3s.
	tgt := p.targets[a.ID]
	if tgt.missed != 3 {
		t.Fatalf("missed = %d after 3.9s, want 3 (one per ProbeTimeout)", tgt.missed)
	}
	if tgt.susp != 3 {
		t.Fatalf("susp = %v, want exactly 3.0 (fixed mode mirrors missed)", tgt.susp)
	}
	if st := p.Stats(); st.ProbesSent != 4 || st.Suspects != 0 {
		t.Fatalf("stats = %+v, want 4 probes sent and no suspicion yet", st)
	}
}

// TestAdaptiveSlowPeerNotDeclared is the core gray-failure property: a
// peer answering consistently at 600ms — far beyond the 250ms fixed
// timeout — is never declared once the estimator learns its latency
// from late pongs.
func TestAdaptiveSlowPeerNotDeclared(t *testing.T) {
	cfg := Config{
		ProbeInterval:  100 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		SuspectAfter:   3,
		IndirectProbes: 1,
		ConfirmRounds:  2,
	}
	self := mkRef(t, "0000")
	slow := mkRef(t, "1111")
	p := NewProber(cfg, self)
	p.SetRTT(rtt.New(rtt.Config{MinRTO: 100 * time.Millisecond, MaxRTO: 5 * time.Second}))
	p.SetTargets([]table.Ref{slow})

	declared, _ := runDelayed(p, 10*time.Second, func(_ time.Duration, env msg.Envelope) ([]msg.Envelope, time.Duration) {
		if pm, ok := env.Msg.(msg.Ping); ok && env.To.ID == slow.ID {
			return RespondPing(slow, env.From, pm), 600 * time.Millisecond
		}
		return nil, -1
	})
	if len(declared) != 0 {
		t.Fatalf("slow-but-alive peer declared failed: %v", declared)
	}
	st := p.Stats()
	if st.LatePongs == 0 {
		t.Fatalf("no late pongs recorded — estimator never fed: %+v", st)
	}
	if st.AdaptiveDeadlines == 0 {
		t.Fatalf("no adaptive deadlines used: %+v", st)
	}
	if rto, ok := p.RTT().RTO(slow.ID); !ok || rto <= 600*time.Millisecond {
		t.Fatalf("estimator RTO = %v,%v — did not learn the 600ms peer", rto, ok)
	}
}

// TestFixedBaselineDeclaresSlowPeer is the contrast run: the same
// 600ms peer under fixed timeouts (no estimator) is falsely declared
// dead once it slows down, because late pongs are dropped.
func TestFixedBaselineDeclaresSlowPeer(t *testing.T) {
	cfg := Config{
		ProbeInterval:  100 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		SuspectAfter:   3,
		IndirectProbes: 1,
		ConfirmRounds:  2,
	}
	self := mkRef(t, "0000")
	gray := mkRef(t, "1111")
	p := NewProber(cfg, self)
	p.SetTargets([]table.Ref{gray})

	// Fast for 2s (so it is seen alive — a declarable target), then 600ms.
	declared, _ := runDelayed(p, 15*time.Second, func(now time.Duration, env msg.Envelope) ([]msg.Envelope, time.Duration) {
		if pm, ok := env.Msg.(msg.Ping); ok && env.To.ID == gray.ID {
			d := 50 * time.Millisecond
			if now >= 2*time.Second {
				d = 600 * time.Millisecond
			}
			return RespondPing(gray, env.From, pm), d
		}
		return nil, -1
	})
	if len(declared) != 1 || declared[0].ID != gray.ID {
		t.Fatalf("fixed timeouts did not falsely declare the gray peer: %v", declared)
	}
}

// TestAdaptiveRampRescuedByConfirmFloor covers the nastiest gray case:
// a peer the estimator learned as fast (RTO at MinRTO) abruptly turns
// 600ms-slow. Misses against it charge double, so it is suspected
// almost immediately — but confirmation rounds are floored at the
// fixed ProbeTimeout, which keeps the declaration window open long
// enough for the first late pong to arrive, feed the estimator, and
// revive it.
func TestAdaptiveRampRescuedByConfirmFloor(t *testing.T) {
	cfg := Config{
		ProbeInterval:  100 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		SuspectAfter:   3,
		IndirectProbes: 1,
		ConfirmRounds:  2,
	}
	self := mkRef(t, "0000")
	gray := mkRef(t, "1111")
	p := NewProber(cfg, self)
	p.SetRTT(rtt.New(rtt.Config{MinRTO: 100 * time.Millisecond, MaxRTO: 5 * time.Second}))
	p.SetTargets([]table.Ref{gray})

	declared, _ := runDelayed(p, 10*time.Second, func(now time.Duration, env msg.Envelope) ([]msg.Envelope, time.Duration) {
		if pm, ok := env.Msg.(msg.Ping); ok && env.To.ID == gray.ID {
			d := 50 * time.Millisecond
			if now >= 2*time.Second {
				d = 600 * time.Millisecond
			}
			return RespondPing(gray, env.From, pm), d
		}
		return nil, -1
	})
	if len(declared) != 0 {
		t.Fatalf("ramping gray peer declared failed under adaptive timeouts: %v", declared)
	}
	st := p.Stats()
	if st.LatePongs == 0 {
		t.Fatalf("ramp never produced a late pong: %+v", st)
	}
	if rto, ok := p.RTT().RTO(gray.ID); !ok || rto <= 600*time.Millisecond {
		t.Fatalf("estimator never chased the ramp: RTO = %v,%v", rto, ok)
	}
}

// TestAdaptiveDeclaresDeadFasterOnFastLink: the flip side of accrual
// suspicion. A genuinely dead peer whose link was learned fast (RTO
// near MinRTO) accumulates double-weight misses on a short deadline,
// so the adaptive prober reaches the declaration measurably sooner
// than the fixed-timeout one under identical traffic.
func TestAdaptiveDeclaresDeadFasterOnFastLink(t *testing.T) {
	cfg := Config{
		ProbeInterval:  100 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		SuspectAfter:   3,
		IndirectProbes: 1,
		ConfirmRounds:  2,
	}
	run := func(adaptive bool) time.Duration {
		self := mkRef(t, "0000")
		dead := mkRef(t, "1111")
		p := NewProber(cfg, self)
		if adaptive {
			p.SetRTT(rtt.New(rtt.Config{MinRTO: 100 * time.Millisecond, MaxRTO: 5 * time.Second}))
		}
		p.SetTargets([]table.Ref{dead})
		declared, at := runDelayed(p, 15*time.Second, func(now time.Duration, env msg.Envelope) ([]msg.Envelope, time.Duration) {
			if pm, ok := env.Msg.(msg.Ping); ok && env.To.ID == dead.ID && now < 2*time.Second {
				return RespondPing(dead, env.From, pm), 50 * time.Millisecond
			}
			return nil, -1
		})
		if len(declared) != 1 || declared[0].ID != dead.ID {
			t.Fatalf("dead peer not declared (adaptive=%v): %v", adaptive, declared)
		}
		return at[0]
	}
	fixed := run(false)
	adaptive := run(true)
	if adaptive >= fixed {
		t.Fatalf("adaptive declaration (%v) not faster than fixed (%v)", adaptive, fixed)
	}
}

// TestRecentBufferBounded: the late-pong buffer must not grow without
// bound when a peer expires probes forever and never answers.
func TestRecentBufferBounded(t *testing.T) {
	cfg := cfgFast()
	self := mkRef(t, "0000")
	a := mkRef(t, "1111")
	p := NewProber(cfg, self)
	p.SetRTT(rtt.New(rtt.Config{}))
	p.SetTargets([]table.Ref{a})
	runDelayed(p, 2*time.Minute, func(_ time.Duration, env msg.Envelope) ([]msg.Envelope, time.Duration) {
		return nil, -1
	})
	if len(p.recent) > recentCap || len(p.recentQ) > recentCap {
		t.Fatalf("recent buffer unbounded: %d entries, %d queued", len(p.recent), len(p.recentQ))
	}
}
