// Anti-entropy messages — the table-audit layer of the partition-
// tolerance extension. A round is a push-pull exchange: the initiator
// sends its §6.2 fill vector as a digest (SyncReq), the responder
// replies with exactly the entries the initiator is missing plus its
// own fill vector (SyncRly), and the initiator pushes back whatever the
// responder is missing (SyncPush). Two consistent peers exchange one
// small and two empty-table messages; divergence costs bytes in
// proportion to the difference.
package msg

import "hypercube/internal/table"

// SyncReq opens an anti-entropy round: the sender's fill vector is a
// compact digest of which (level, digit) entries it has filled.
type SyncReq struct {
	Fill table.BitVector
}

// Type implements Message.
func (SyncReq) Type() Type { return TSyncReq }

// Big implements Message.
func (SyncReq) Big() bool { return false }

// WireSize implements Message.
func (m SyncReq) WireSize() int { return smallHeader + m.Fill.WireSize() }

// SyncRly answers a SyncReq. Table holds the responder's entries whose
// canonical slot in the requester's table is empty per the digest; Fill
// is the responder's own fill vector so the requester can push back in
// turn.
type SyncRly struct {
	Table table.Snapshot
	Fill  table.BitVector
}

// Type implements Message.
func (SyncRly) Type() Type { return TSyncRly }

// Big implements Message.
func (SyncRly) Big() bool { return true }

// WireSize implements Message.
func (m SyncRly) WireSize() int { return smallHeader + m.Table.WireSize() + m.Fill.WireSize() }

// SyncPush completes the round: the entries the responder's fill vector
// showed it was missing. No reply is expected.
type SyncPush struct {
	Table table.Snapshot
}

// Type implements Message.
func (SyncPush) Type() Type { return TSyncPush }

// Big implements Message.
func (SyncPush) Big() bool { return true }

// WireSize implements Message.
func (m SyncPush) WireSize() int { return smallHeader + m.Table.WireSize() }
