GO ?= go

.PHONY: all build test race bench vet fmt lint cover experiments trace-smoke

all: build lint test

build:
	$(GO) build ./...

# The default test path includes vet and a race-detector pass over the
# whole module — new packages (anti-entropy engine, partition plumbing)
# get race coverage automatically instead of waiting to be listed.
test: vet
	$(GO) test ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# lint fails on unformatted files (gofmt -l prints them; grep turns any
# output into a non-zero exit) and runs vet with the two analyzers that
# are off by default in `go vet` but catch real protocol-loop bugs:
# unreachable code after give-up branches and lost context cancels in
# the transport.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -unreachable -lostcancel ./...

cover:
	$(GO) test -cover ./internal/...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/figure15a
	$(GO) run ./cmd/figure15b
	$(GO) run ./cmd/jointable
	$(GO) run ./cmd/consistency
	$(GO) run ./cmd/csettree
	$(GO) run ./cmd/baselinecmp
	$(GO) run ./cmd/msgsize
	$(GO) run ./cmd/churn
	$(GO) run ./cmd/workload -quiet

# trace-smoke proves the tracing pipeline end to end: a 16-node overlay
# wave writes a JSONL trace and tracestat must parse it cleanly (exit 0).
trace-smoke:
	$(GO) run ./cmd/tracewave -n 16 -m 12 -out /tmp/hypercube-trace-smoke.jsonl
	$(GO) run ./cmd/tracestat /tmp/hypercube-trace-smoke.jsonl
