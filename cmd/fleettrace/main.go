// Command fleettrace merges per-node trace streams into cross-node span
// trees and reports on them: end-to-end join reconstruction with per-hop
// latency breakdowns, probe round-trip chains with per-node clock-skew
// estimates, anti-entropy and gossip round trees, hop-count
// distributions, and a fleet convergence summary.
//
// Input is either JSONL trace files (one merged file or one per node —
// events carry their node ID, so concatenation is merging):
//
//	fleettrace node1.jsonl node2.jsonl node3.jsonl
//	churn -n 64 -flashcrowd -trace trace.jsonl && fleettrace trace.jsonl
//
// or a live fleet, scraping GET /trace (the in-memory event ring; start
// nodes with WithTraceRing) and GET /metrics from each admin endpoint:
//
//	fleettrace -scrape localhost:7001,localhost:7002,localhost:7003
//
// The simulator and the TCP runtime emit the same schema, so both work.
// With -require-joins the exit status enforces a reconstruction floor,
// which is how CI keeps the tracing pipeline honest.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"hypercube/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fleettrace: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	scrape := flag.String("scrape", "", "comma-separated admin endpoints to scrape live (/trace + /metrics) instead of reading files")
	requireJoins := flag.Float64("require-joins", 0, "exit nonzero unless at least this fraction of joins reconstructs end to end (0 disables)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: fleettrace [-json] [-require-joins 0.95] <trace.jsonl ... | -> \n"+
				"       fleettrace [-json] -scrape host:port,host:port,...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var (
		events  []obs.Event
		metrics map[string]float64
		err     error
	)
	if *scrape != "" {
		if flag.NArg() != 0 {
			return fmt.Errorf("-scrape and file arguments are mutually exclusive")
		}
		events, metrics, err = scrapeFleet(strings.Split(*scrape, ","))
	} else {
		if flag.NArg() == 0 {
			flag.Usage()
			os.Exit(2)
		}
		events, err = readFiles(flag.Args())
	}
	if err != nil {
		return err
	}

	rep := analyze(events)
	rep.FleetMetrics = metrics
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printReport(os.Stdout, rep)
	}
	if *requireJoins > 0 {
		if rep.Joins.Attempted == 0 {
			return fmt.Errorf("join reconstruction required but no join traces found")
		}
		if rep.Joins.Ratio < *requireJoins {
			return fmt.Errorf("join reconstruction %.1f%% below required %.1f%%",
				100*rep.Joins.Ratio, 100**requireJoins)
		}
	}
	return nil
}

// readFiles loads and concatenates JSONL traces; "-" reads stdin.
func readFiles(paths []string) ([]obs.Event, error) {
	var events []obs.Event
	for _, path := range paths {
		var r io.Reader = os.Stdin
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		line := 0
		for sc.Scan() {
			line++
			raw := sc.Bytes()
			if len(raw) == 0 {
				continue
			}
			var e obs.Event
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, fmt.Errorf("%s line %d: %w", path, line, err)
			}
			events = append(events, e)
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return events, nil
}

// scrapeFleet drains every node's trace ring and sums its numeric
// metrics. Endpoints may omit the scheme.
func scrapeFleet(endpoints []string) ([]obs.Event, map[string]float64, error) {
	var events []obs.Event
	metrics := make(map[string]float64)
	client := &http.Client{Timeout: 10 * time.Second}
	for _, ep := range endpoints {
		ep = strings.TrimSpace(ep)
		if ep == "" {
			continue
		}
		base := ep
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		evs, err := scrapeTrace(client, base+"/trace")
		if err != nil {
			return nil, nil, fmt.Errorf("scrape %s: %w", ep, err)
		}
		events = append(events, evs...)
		if err := scrapeMetrics(client, base+"/metrics", metrics); err != nil {
			return nil, nil, fmt.Errorf("scrape %s: %w", ep, err)
		}
	}
	return events, metrics, nil
}

func scrapeTrace(client *http.Client, url string) ([]obs.Event, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /trace: %s (is the node running with WithTraceRing?)", resp.Status)
	}
	var body struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Events, nil
}

// scrapeMetrics folds one node's Prometheus text exposition into the
// fleet-wide sums. Histogram buckets are skipped (their _sum and _count
// carry the aggregatable signal); labeled series are summed under the
// bare metric name.
func scrapeMetrics(client *http.Client, url string, into map[string]float64) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if strings.HasSuffix(name[:i], "_bucket") {
				continue
			}
			name = name[:i]
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		into[name] += v
	}
	return sc.Err()
}

// latencyStats is a percentile summary of a duration sample.
type latencyStats struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50"`
	P90   time.Duration `json:"p90"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

func summarize(ds []time.Duration) latencyStats {
	return latencyStats{
		Count: len(ds),
		P50:   obs.Percentile(ds, 50),
		P90:   obs.Percentile(ds, 90),
		P99:   obs.Percentile(ds, 99),
		Max:   obs.Percentile(ds, 100),
	}
}

// opStats counts one root kind's trees and how many reconstruct.
type opStats struct {
	Traces   int `json:"traces"`
	Complete int `json:"complete"`
}

// joinReport is the headline number: of the nodes that started a join,
// how many have at least one join operation whose span tree
// reconstructs end to end (root, every parent resolved, in_system
// reached inside the trace).
type joinReport struct {
	Attempted     int                     `json:"attempted"`
	Reconstructed int                     `json:"reconstructed"`
	Ratio         float64                 `json:"ratio"`
	Restarts      int                     `json:"restarts"`
	HopsByMsg     map[string]latencyStats `json:"hopLatencyByMsg,omitempty"`
	DepthDist     map[int]int             `json:"depthDistribution,omitempty"`
}

type probeReport struct {
	Samples int                      `json:"samples"`
	RTT     latencyStats             `json:"rtt"`
	Skew    map[string]time.Duration `json:"clockSkewByNode,omitempty"`
}

type convergenceReport struct {
	Nodes       int `json:"nodes"`
	InSystem    int `json:"inSystem"`
	Suspects    int `json:"suspects"`
	Degraded    int `json:"degraded"`
	Quarantined int `json:"quarantined"`
}

type report struct {
	Events       int                `json:"events"`
	TracedEvents int                `json:"tracedEvents"`
	Traces       int                `json:"traces"`
	Ops          map[string]opStats `json:"operations"`
	Joins        joinReport         `json:"joins"`
	Probes       probeReport        `json:"probes"`
	DHTHops      map[int]int        `json:"dhtLookupHops,omitempty"`
	Convergence  convergenceReport  `json:"convergence"`
	FleetMetrics map[string]float64 `json:"fleetMetrics,omitempty"`
}

func analyze(events []obs.Event) *report {
	rep := &report{
		Events: len(events),
		Ops:    make(map[string]opStats),
		Joins: joinReport{
			HopsByMsg: make(map[string]latencyStats),
			DepthDist: make(map[int]int),
		},
		DHTHops: make(map[int]int),
	}
	for _, e := range events {
		if e.Trace != "" {
			rep.TracedEvents++
		}
	}

	trees := obs.BuildTrees(events)
	rep.Traces = len(trees)

	joinByNode := make(map[string]bool) // node -> any complete join
	joinTrees := 0
	var completeJoins []*obs.Tree
	var rtts []time.Duration
	skewEdges := make(map[[2]string]*edge)
	for _, t := range trees {
		kind := string(t.RootKind())
		if kind == "" {
			kind = "(rootless)"
		}
		op := rep.Ops[kind]
		op.Traces++
		if t.Complete() {
			op.Complete++
		}
		rep.Ops[kind] = op

		switch t.RootKind() {
		case obs.KindJoinStart:
			joinTrees++
			node := t.RootNode()
			if t.JoinComplete() {
				joinByNode[node] = true
				rep.Joins.DepthDist[t.Depth()]++
				completeJoins = append(completeJoins, t)
			} else if _, seen := joinByNode[node]; !seen {
				joinByNode[node] = false
			}
		case obs.KindProbe:
			if s, ok := t.ProbeSample(); ok {
				rtts = append(rtts, s.RTT)
				k := [2]string{s.Prober, s.Target}
				if skewEdges[k] == nil {
					skewEdges[k] = &edge{}
				}
				skewEdges[k].sum += s.Skew
				skewEdges[k].count++
			}
		case obs.KindDHTLookup:
			if e, ok := rootEvent(t); ok && !strings.HasSuffix(e.Detail, " miss") {
				rep.DHTHops[e.N]++
			}
		}
	}

	for _, ok := range joinByNode {
		rep.Joins.Attempted++
		if ok {
			rep.Joins.Reconstructed++
		}
	}
	if rep.Joins.Attempted > 0 {
		rep.Joins.Ratio = float64(rep.Joins.Reconstructed) / float64(rep.Joins.Attempted)
	}
	rep.Joins.Restarts = joinTrees - rep.Joins.Attempted
	if rep.Joins.Restarts < 0 {
		rep.Joins.Restarts = 0
	}
	// Hop latencies subtract each end's solved clock offset: a hop's raw
	// recv.T − send.T is measured on two different clocks, and on a live
	// fleet those clocks are wall-time-since-each-process-start, so the
	// offsets (seconds of start stagger) would swamp the real
	// milliseconds. The probe-derived skew map is exactly that offset.
	skew := solveSkew(skewEdges)
	hopSamples := make(map[string][]time.Duration)
	for _, t := range completeJoins {
		for _, h := range t.Hops() {
			lat := h.Latency() - (skew[h.To] - skew[h.From])
			hopSamples[h.Msg] = append(hopSamples[h.Msg], lat)
		}
	}
	for msg, ds := range hopSamples {
		rep.Joins.HopsByMsg[msg] = summarize(ds)
	}
	rep.Probes = probeReport{
		Samples: len(rtts),
		RTT:     summarize(rtts),
		Skew:    skew,
	}
	rep.Convergence = convergence(events)
	return rep
}

func rootEvent(t *obs.Tree) (obs.Event, bool) {
	if t.Root == nil {
		return obs.Event{}, false
	}
	for _, e := range t.Root.Events {
		if e.Kind == t.RootKind() {
			return e, true
		}
	}
	return obs.Event{}, false
}

// solveSkew turns pairwise probe skew estimates into per-node clock
// offsets: average each directed pair's samples, then anchor the node
// with the most measurement partners at zero and propagate
// breadth-first (offset[target] = offset[prober] + skew). Nodes
// unreachable from the anchor through any probe pair are omitted.
func solveSkew(edges map[[2]string]*edge) map[string]time.Duration {
	if len(edges) == 0 {
		return nil
	}
	adj := make(map[string]map[string]time.Duration)
	link := func(a, b string, d time.Duration) {
		if adj[a] == nil {
			adj[a] = make(map[string]time.Duration)
		}
		adj[a][b] = d
	}
	for k, e := range edges {
		avg := e.sum / time.Duration(e.count)
		link(k[0], k[1], avg)
		link(k[1], k[0], -avg)
	}
	anchor, best := "", -1
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if len(adj[n]) > best {
			anchor, best = n, len(adj[n])
		}
	}
	offsets := map[string]time.Duration{anchor: 0}
	queue := []string{anchor}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := make([]string, 0, len(adj[cur]))
		for n := range adj[cur] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if _, done := offsets[n]; done {
				continue
			}
			offsets[n] = offsets[cur] + adj[cur][n]
			queue = append(queue, n)
		}
	}
	return offsets
}

// edge is solveSkew's accumulator, declared at package scope so both
// analyze and solveSkew name the same type.
type edge struct {
	sum   time.Duration
	count int
}

// convergence replays the whole event stream (traced or not) into the
// fleet's final state: each node's last protocol status and the sets of
// currently suspected, degraded, and quarantined peers.
func convergence(events []obs.Event) convergenceReport {
	status := make(map[string]string)
	suspects := make(map[string]bool)
	degraded := make(map[string]bool)
	quarantined := make(map[string]bool)
	for _, e := range events {
		switch e.Kind {
		case obs.KindStatus:
			status[e.Node] = e.Detail
		case obs.KindSuspect:
			suspects[e.Peer] = true
		case obs.KindRecovered, obs.KindDeclared:
			delete(suspects, e.Peer)
		case obs.KindDegraded:
			degraded[e.Peer] = true
		case obs.KindDegradedClear:
			delete(degraded, e.Peer)
		case obs.KindQuarantine:
			quarantined[e.Peer] = true
		case obs.KindQuarantineRelease:
			delete(quarantined, e.Peer)
		}
	}
	rep := convergenceReport{Nodes: len(status)}
	for _, s := range status {
		if s == "in_system" {
			rep.InSystem++
		}
	}
	rep.Suspects = len(suspects)
	rep.Degraded = len(degraded)
	rep.Quarantined = len(quarantined)
	return rep
}

func printReport(w io.Writer, rep *report) {
	fmt.Fprintf(w, "fleet trace: %d events (%d traced), %d span trees\n",
		rep.Events, rep.TracedEvents, rep.Traces)

	if len(rep.Ops) > 0 {
		kinds := make([]string, 0, len(rep.Ops))
		for k := range rep.Ops {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(w, "operations:\n")
		for _, k := range kinds {
			op := rep.Ops[k]
			fmt.Fprintf(w, "  %-14s %6d traces, %6d complete (%.1f%%)\n",
				k, op.Traces, op.Complete, pct(op.Complete, op.Traces))
		}
	}

	j := rep.Joins
	if j.Attempted > 0 {
		fmt.Fprintf(w, "joins: %d/%d reconstructed end-to-end (%.1f%%), %d restarts\n",
			j.Reconstructed, j.Attempted, 100*j.Ratio, j.Restarts)
		if len(j.DepthDist) > 0 {
			depths := make([]int, 0, len(j.DepthDist))
			for d := range j.DepthDist {
				depths = append(depths, d)
			}
			sort.Ints(depths)
			fmt.Fprintf(w, "  span depth:")
			for _, d := range depths {
				fmt.Fprintf(w, " %d:%d", d, j.DepthDist[d])
			}
			fmt.Fprintln(w)
		}
		if len(j.HopsByMsg) > 0 {
			msgs := make([]string, 0, len(j.HopsByMsg))
			for m := range j.HopsByMsg {
				msgs = append(msgs, m)
			}
			sort.Strings(msgs)
			fmt.Fprintf(w, "  %-16s %6s %12s %12s %12s %12s   (skew-corrected)\n",
				"hop (msg)", "count", "p50", "p90", "p99", "max")
			for _, m := range msgs {
				s := j.HopsByMsg[m]
				fmt.Fprintf(w, "  %-16s %6d %12v %12v %12v %12v\n",
					m, s.Count, s.P50, s.P90, s.P99, s.Max)
			}
		}
	}

	if rep.Probes.Samples > 0 {
		s := rep.Probes.RTT
		fmt.Fprintf(w, "probes: %d full round trips, RTT p50 %v, p90 %v, p99 %v, max %v\n",
			rep.Probes.Samples, s.P50, s.P90, s.P99, s.Max)
		if len(rep.Probes.Skew) > 0 {
			nodes := make([]string, 0, len(rep.Probes.Skew))
			allZero := true
			for n, sk := range rep.Probes.Skew {
				nodes = append(nodes, n)
				if sk != 0 {
					allZero = false
				}
			}
			if allZero {
				// The simulator's nodes share one virtual clock; a wall
				// of "node:0s" entries would bury the real signal.
				fmt.Fprintf(w, "  clock skew (vs anchor): all %d nodes at 0s\n", len(nodes))
			} else {
				sort.Strings(nodes)
				fmt.Fprintf(w, "  clock skew (vs anchor):")
				for _, n := range nodes {
					fmt.Fprintf(w, " %s:%v", n, rep.Probes.Skew[n])
				}
				fmt.Fprintln(w)
			}
		}
	}

	if len(rep.DHTHops) > 0 {
		hops := make([]int, 0, len(rep.DHTHops))
		for h := range rep.DHTHops {
			hops = append(hops, h)
		}
		sort.Ints(hops)
		fmt.Fprintf(w, "dht lookups by hop count:")
		for _, h := range hops {
			fmt.Fprintf(w, " %d:%d", h, rep.DHTHops[h])
		}
		fmt.Fprintln(w)
	}

	c := rep.Convergence
	fmt.Fprintf(w, "convergence: %d nodes seen, %d in_system, %d suspected, %d degraded, %d quarantined\n",
		c.Nodes, c.InSystem, c.Suspects, c.Degraded, c.Quarantined)

	if len(rep.FleetMetrics) > 0 {
		names := make([]string, 0, len(rep.FleetMetrics))
		for n := range rep.FleetMetrics {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "fleet metrics (summed across nodes):\n")
		for _, n := range names {
			fmt.Fprintf(w, "  %-44s %g\n", n, rep.FleetMetrics[n])
		}
	}
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
