package overlay

// Clock-jump/pause fault injection: a paused node's local ticks stall
// and its inbound traffic queues, then everything bursts at resume —
// the discrete-event analogue of a long GC pause, a VM live-migration
// blackout, or a laptop lid closing. Unlike a crash the node never
// loses state, and unlike a slow node (SlowNodes) the stall is total:
// nothing is processed until the pause ends, at which point every
// deferred delivery fires in one instant and the node's probers and
// timers catch up. The failure detector must ride this out: a pause
// shorter than the declaration window may suspect the node but must
// never declare it, and the RTT estimator must absorb the burst of
// late pongs without poisoning its per-peer estimates.

import (
	"fmt"
	"time"

	"hypercube/internal/id"
)

// PauseNode stalls node x for d of virtual time starting now: its
// clock-pump ticks (probing, timeout resends, anti-entropy and
// sampling rounds) are skipped and every message delivered to it is
// deferred to the resume instant, where the whole backlog bursts.
// Messages the node already emitted stay in flight. Pausing an
// already-paused node extends the pause if the new deadline is later.
func (n *Network) PauseNode(x id.ID, d time.Duration) error {
	if _, ok := n.machines[x]; !ok {
		return fmt.Errorf("overlay: pause of unknown node %v", x)
	}
	if d <= 0 {
		return fmt.Errorf("overlay: pause of %v for non-positive duration %v", x, d)
	}
	until := n.engine.Now() + d
	if cur, ok := n.paused[x]; !ok || until > cur {
		n.paused[x] = until
	}
	return nil
}

// PausedDeferred returns how many deliveries the pause fault deferred
// to a resume burst so far.
func (n *Network) PausedDeferred() uint64 { return n.pauseDeferred }

// pausedNow reports whether x is paused at virtual time now, lazily
// forgetting expired pauses.
func (n *Network) pausedNow(x id.ID, now time.Duration) bool {
	until, ok := n.paused[x]
	if !ok {
		return false
	}
	if now >= until {
		delete(n.paused, x)
		return false
	}
	return true
}
