// Package obs is the protocol observability layer: typed events traced
// out of every runtime, and a dependency-free metrics registry exported
// in Prometheus text format.
//
// The paper's entire evaluation is cost accounting — join message counts
// against the Theorem 3–5 bounds, the Figure 15 CDFs — yet aggregate
// counters cannot answer "why did this join take 4 seconds" or "which
// phase stalled during the partition soak". Events answer those
// questions: each protocol-significant step (a status transition, a
// message send, a probe miss, an anti-entropy round) is emitted as one
// small typed Event through a Sink. The overlay simulator stamps events
// with the virtual clock and the TCP runtime with wall time since start,
// so both produce the same trace schema and the same analysis tooling
// (cmd/tracestat, Analyzer) works on either.
//
// Tracing is off by default and must cost nearly nothing when off: the
// emitting code holds a Sink field that is nil by default and checks it
// before constructing an Event, so the hot path pays exactly one
// nil-check. Nop is the explicit spelling of that default for APIs that
// want a non-nil Sink value.
//
// Sinks used with the TCP runtime must be safe for concurrent use (the
// machine, the liveness loop, and the delivery layer emit from different
// goroutines); every sink in this package is. The overlay simulator is
// single-threaded and has no such requirement.
package obs

import (
	"time"

	"hypercube/internal/trace"
)

// Kind names the protocol step an Event records. Kinds are stable
// strings (they appear verbatim in JSONL traces); new kinds may be added
// but existing ones must not be renamed.
type Kind string

const (
	// KindStatus is a protocol-status transition; Detail carries the new
	// status name (copying, waiting, notifying, in_system, leaving, left).
	KindStatus Kind = "status"
	// KindJoinStart is a StartJoin or a timeout-driven join restart; Peer
	// is the gateway, N the restart count (0 for the first attempt).
	KindJoinStart Kind = "join_start"
	// KindSend / KindRecv are message transmissions and deliveries; Msg
	// carries the message-type name, Peer the other endpoint.
	KindSend Kind = "send"
	KindRecv Kind = "recv"
	// KindRetry is a delivery-layer retry of a failed transmission
	// attempt; KindDrop a dead-lettered message. Msg carries the type.
	KindRetry Kind = "retry"
	KindDrop  Kind = "drop"
	// KindResend is a core request/reply exchange resent after a timeout
	// (Msg, Peer, N = attempt); KindGiveUp an exchange abandoned after
	// exhausting its attempts.
	KindResend Kind = "resend"
	KindGiveUp Kind = "give_up"
	// Failure-detector events. Probes carry Seq so an analyzer can pair
	// KindProbe with KindProbeAck (RTT) or KindProbeMiss; Detail is
	// "indirect" for relayed probes.
	KindProbe       Kind = "probe"
	KindProbeAck    Kind = "probe_ack"
	KindProbeMiss   Kind = "probe_miss"
	KindSuspect     Kind = "suspect"
	KindRecovered   Kind = "recovered"
	KindDeclared    Kind = "declared"
	KindUnreachable Kind = "unreachable"
	// KindPartitionEnter / KindPartitionExit are the prober's partition-
	// mode transitions; N carries the distressed-target count.
	KindPartitionEnter Kind = "partition_enter"
	KindPartitionExit  Kind = "partition_exit"
	// KindFailureNoted is the machine recording a crash (its own
	// detector's declaration or FailedNoti gossip); Peer is the dead node.
	KindFailureNoted Kind = "failure_noted"
	// KindSyncRound is one anti-entropy round initiated with Peer;
	// KindAuditPurge a table audit that purged N entries.
	KindSyncRound  Kind = "sync_round"
	KindAuditPurge Kind = "audit_purge"
	// KindRepairStart / KindRepairDone bracket one crash-emptied table
	// entry's autonomous repair; Detail carries "(level,digit)" plus, on
	// done, the outcome (filled, empty, abandoned).
	KindRepairStart Kind = "repair_start"
	KindRepairDone  Kind = "repair_done"
	// Guard-layer events (hostile-input hardening). KindGuardReject is a
	// message that failed semantic validation (Msg the type, Peer the
	// sender, Detail the reason); KindGuardDrop a message dropped without
	// validation — an unknown type, a quarantined sender's traffic, or a
	// transport frame the codec could not decode (Detail says which).
	KindGuardReject Kind = "guard_reject"
	KindGuardDrop   Kind = "guard_drop"
	// KindQuarantine / KindQuarantineRelease bracket a peer's quarantine:
	// its misbehavior score crossed the threshold, and the cooldown later
	// expired. Peer identifies the quarantined node.
	KindQuarantine        Kind = "quarantine"
	KindQuarantineRelease Kind = "quarantine_release"
	// KindBusy is a budget-exceeded deferral: the node shed work (a
	// deferred join, a reverse-neighbor registration) instead of growing
	// a bounded set; Detail names the set.
	KindBusy Kind = "busy"
	// Peer-sampling (gossip) events. KindSampleRound is one push-pull
	// round (N the view size after the round); KindSampleFlood a round
	// whose push volume exceeded the Brahms α·l threshold, so the view
	// update was skipped (N the offending push count).
	KindSampleRound Kind = "sample_round"
	KindSampleFlood Kind = "sample_flood"
	// DHT (object-location) events. KindDHTPublish is one publish walk
	// (Node the holder, Detail the object ID, N the directory-path
	// length); KindDHTLookup one lookup (Node the querier, Detail the
	// object ID, N the hop count — Detail gains a " miss" suffix when
	// no holder was found). Both are traced operation roots.
	KindDHTPublish Kind = "dht_publish"
	KindDHTLookup  Kind = "dht_lookup"
	// Gray-failure (adaptive timeout) events. KindDegraded marks a peer
	// whose smoothed probe RTT stays persistently above the cross-peer
	// median (Peer the flagged node); KindDegradedClear reports the
	// hysteresis recovery. Emitted only when an RTT estimator is
	// attached, so fixed-timeout traces are unchanged.
	KindDegraded      Kind = "degraded"
	KindDegradedClear Kind = "degraded_clear"
)

// Event is one traced protocol step. The zero value of every field but
// Node and Kind is "not applicable"; emitters fill only what the Kind
// documents. T is the time since the run started — virtual time in the
// simulator, wall time in the TCP runtime — stamped by the runtime's
// clock (see Clocked), not by the emitter.
type Event struct {
	T      time.Duration `json:"t"`
	Node   string        `json:"node"`
	Kind   Kind          `json:"kind"`
	Peer   string        `json:"peer,omitempty"`
	Msg    string        `json:"msg,omitempty"`
	Detail string        `json:"detail,omitempty"`
	Seq    uint64        `json:"seq,omitempty"`
	N      int           `json:"n,omitempty"`
	// Causal trace context (hex, empty when the event belongs to no
	// sampled operation — the overwhelmingly common case). Trace is the
	// 16-byte operation ID, Span the 8-byte span this event belongs to,
	// Parent the span that caused it (empty on roots). One network hop is
	// one span: the sender's send-kind event and the receiver's recv-kind
	// event share Span, so hop latency is their T difference.
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
}

// Stamped returns a copy of e carrying span context c: c.Span is the
// span the event belongs to, parent the span that caused it (zero on
// operation roots, and on recv-side events — the send side carries the
// edge). Unsampled contexts return e unchanged, so emitters stamp
// unconditionally and untraced runs produce byte-identical events.
func (e Event) Stamped(c trace.Context, parent trace.SpanID) Event {
	if !c.Sampled() {
		return e
	}
	e.Trace = c.Trace.String()
	e.Span = c.Span.String()
	if !parent.IsZero() {
		e.Parent = parent.String()
	}
	return e
}

// Sink consumes emitted events. Emit must not retain e past the call
// when it can avoid it; sinks that buffer (Ring, JSONL) copy the value.
type Sink interface {
	Emit(Event)
}

type nopSink struct{}

func (nopSink) Emit(Event) {}

// Nop is the zero-cost discarding sink. Components treat it as
// equivalent to "no sink": their SetSink methods normalize Nop to nil so
// the hot path's nil-check short-circuits before any Event is built —
// tracing off costs one comparison, zero allocations.
var Nop Sink = nopSink{}

// IsNop reports whether s is nil or the Nop sink; component SetSink
// implementations use it to normalize "tracing off" to a nil field.
func IsNop(s Sink) bool { return s == nil || s == Nop }

type clockedSink struct {
	next  Sink
	clock func() time.Duration
}

func (c clockedSink) Emit(e Event) {
	e.T = c.clock()
	c.next.Emit(e)
}

// Clocked wraps next so every event is stamped with clock() at emit
// time. Runtimes install it between the emitters and the user's sink:
// the overlay passes its discrete-event engine's Now, the TCP runtime a
// monotonic time-since-start. Returns nil if next is nil or Nop.
func Clocked(next Sink, clock func() time.Duration) Sink {
	if IsNop(next) {
		return nil
	}
	return clockedSink{next: next, clock: clock}
}

type teeSink struct {
	sinks []Sink
}

func (t teeSink) Emit(e Event) {
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Tee fans every event out to all given sinks. Nil and Nop entries are
// dropped; Tee of zero live sinks returns nil.
func Tee(sinks ...Sink) Sink {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if !IsNop(s) {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeSink{sinks: live}
}
