package overlay

import (
	"math/rand"
	"testing"
	"time"

	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/rtt"
)

func grayConfig() Config {
	return Config{
		Params:  id.Params{B: 4, D: 4},
		Latency: ConstantLatency(5 * time.Millisecond),
		Liveness: &liveness.Config{
			ProbeInterval:  100 * time.Millisecond,
			ProbeTimeout:   400 * time.Millisecond,
			SuspectAfter:   3,
			IndirectProbes: 2,
			ConfirmRounds:  3,
		},
		SlowNodes:    &SlowNodes{Delay: 300 * time.Millisecond, Ramp: 2 * time.Second},
		TickInterval: 50 * time.Millisecond,
	}
}

// TestGraySlowNodeAdaptiveVsFixed is the overlay-level gray-failure
// contrast: a node that ramps to 300ms per-side processing delay
// (round trips ~610ms, well past the 400ms fixed probe timeout) stays
// alive and answering. Under fixed timeouts the detector falsely
// declares it dead; under adaptive timeouts the estimators chase the
// ramp via late pongs and nobody is declared.
func TestGraySlowNodeAdaptiveVsFixed(t *testing.T) {
	run := func(adaptive bool) (declared int, marked int) {
		cfg := grayConfig()
		if adaptive {
			cfg.RTT = &rtt.Config{MinRTO: 50 * time.Millisecond, MaxRTO: 5 * time.Second}
		}
		rng := rand.New(rand.NewSource(7))
		net := New(cfg)
		refs := RandomRefs(cfg.Params, 16, rng, nil)
		net.BuildDirect(refs, rng)

		// Warm-up: estimators learn the fast baseline before the ramp.
		net.RunFor(5 * time.Second)
		gray := refs[4].ID
		net.MarkSlow(gray)
		net.RunFor(40 * time.Second)

		if net.SlowDelayed() == 0 {
			t.Fatalf("slow-node model never delayed a message (adaptive=%v)", adaptive)
		}
		st := net.LivenessStats()
		return st.Declared, net.RTTStats().Marked
	}

	if declared, marked := run(true); declared != 0 {
		t.Errorf("adaptive run falsely declared %d nodes", declared)
	} else if marked == 0 {
		t.Error("adaptive run never flagged the slow node degraded")
	}
	if declared, _ := run(false); declared == 0 {
		t.Error("fixed run did not declare the slow node — the contrast scenario has no teeth")
	}
}

// TestSelectSlowDeterministic: the draw depends only on seed and
// candidate order, and a positive fraction marks at least one node.
func TestSelectSlowDeterministic(t *testing.T) {
	cfg := grayConfig()
	cfg.SlowNodes.Fraction = 0.1
	cfg.SlowNodes.Seed = 99
	rng := rand.New(rand.NewSource(3))
	refs := RandomRefs(cfg.Params, 20, rng, nil)

	pick := func() []id.ID {
		net := New(cfg)
		net.BuildDirect(refs, rand.New(rand.NewSource(3)))
		return net.SelectSlow(refs)
	}
	a, b := pick(), pick()
	if len(a) != 2 {
		t.Fatalf("SelectSlow marked %d of 20 at fraction 0.1, want 2", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SelectSlow not deterministic: %v vs %v", a, b)
		}
	}
}

// TestAsymmetricLatencySkew: the wrapper is deterministic, skews
// exactly one direction of a selected pair, and leaves unselected
// pairs (fraction 0) untouched.
func TestAsymmetricLatencySkew(t *testing.T) {
	p := id.Params{B: 4, D: 4}
	rng := rand.New(rand.NewSource(11))
	refs := RandomRefs(p, 12, rng, nil)
	base := ConstantLatency(10 * time.Millisecond)

	identity := AsymmetricLatency(base, 0, 10, 5)
	all := AsymmetricLatency(base, 1, 10, 5)
	skewedPairs := 0
	for i := range refs {
		for j := i + 1; j < len(refs); j++ {
			a, b := refs[i], refs[j]
			if identity(a, b) != 10*time.Millisecond || identity(b, a) != 10*time.Millisecond {
				t.Fatalf("fraction 0 altered latency for %v<->%v", a.ID, b.ID)
			}
			ab, ba := all(a, b), all(b, a)
			if ab != all(a, b) || ba != all(b, a) {
				t.Fatalf("wrapper not deterministic for %v<->%v", a.ID, b.ID)
			}
			slow, fast := ab, ba
			if fast > slow {
				slow, fast = fast, slow
			}
			if fast != 10*time.Millisecond || slow != 100*time.Millisecond {
				t.Fatalf("pair %v<->%v: latencies %v/%v, want one 10ms and one 100ms", a.ID, b.ID, ab, ba)
			}
			skewedPairs++
		}
	}
	if skewedPairs == 0 {
		t.Fatal("no pairs checked")
	}
}

// TestSlowDelayRamp: the injected delay grows linearly from the mark
// time and recovery restores full speed.
func TestSlowDelayRamp(t *testing.T) {
	cfg := grayConfig()
	rng := rand.New(rand.NewSource(5))
	net := New(cfg)
	refs := RandomRefs(cfg.Params, 4, rng, nil)
	net.BuildDirect(refs, rng)

	x := refs[0].ID
	net.MarkSlow(x)
	if d := net.slowDelay(x, 0); d != 0 {
		t.Fatalf("delay at mark time = %v, want 0 (ramp start)", d)
	}
	if d := net.slowDelay(x, time.Second); d != 150*time.Millisecond {
		t.Fatalf("delay mid-ramp = %v, want 150ms", d)
	}
	if d := net.slowDelay(x, 3*time.Second); d != 300*time.Millisecond {
		t.Fatalf("delay post-ramp = %v, want full 300ms", d)
	}
	net.UnmarkSlow(x)
	if d := net.slowDelay(x, 3*time.Second); d != 0 {
		t.Fatalf("delay after recovery = %v, want 0", d)
	}
	if other := refs[1].ID; net.slowDelay(other, time.Minute) != 0 {
		t.Fatal("unmarked node has injected delay")
	}
}
