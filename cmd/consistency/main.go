// Command consistency stress-verifies Theorems 1 and 2 of Liu & Lam
// (ICDCS 2003): over a grid of ID-space parameters and random seeds, run
// concurrent join waves and check that every joining node terminates as
// an S-node and that the final network satisfies Definition 3.8. It also
// verifies the Theorem-3 message bound on every single join.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"hypercube/internal/id"
	"hypercube/internal/overlay"
	"hypercube/internal/stats"
)

func main() {
	var (
		trials = flag.Int("trials", 5, "random seeds per configuration")
		n      = flag.Int("n", 200, "initial network size")
		m      = flag.Int("m", 100, "concurrent joiners per wave")
	)
	flag.Parse()

	grids := []id.Params{
		{B: 2, D: 12},
		{B: 4, D: 6},
		{B: 8, D: 5},
		{B: 16, D: 8},
		{B: 16, D: 40},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "b\td\tn\tm\ttrials\tall S-nodes\tconsistent\tThm3 ok\tmean JoinNoti\tp99 JoinNoti")
	failures := 0
	for _, p := range grids {
		allS, consistent, thm3 := true, true, true
		var joinNoti []int
		for trial := 0; trial < *trials; trial++ {
			res, err := overlay.RunWave(overlay.WaveConfig{
				Params: p, N: *n, M: *m, Seed: int64(trial)*7919 + 13,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "consistency: %v\n", err)
				os.Exit(1)
			}
			if !res.AllSNodes {
				allS = false
			}
			if !res.Consistent() {
				consistent = false
			}
			for _, rec := range res.Records {
				if rec.CpRstSent+rec.JoinWaitSent > p.D+1 {
					thm3 = false
				}
			}
			joinNoti = append(joinNoti, res.JoinNoti...)
		}
		if !allS || !consistent || !thm3 {
			failures++
		}
		sum := stats.Summarize(joinNoti)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%v\t%v\t%v\t%.3f\t%.1f\n",
			p.B, p.D, *n, *m, *trials, allS, consistent, thm3, sum.Mean, sum.P99)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "consistency: %v\n", err)
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "consistency: %d configurations FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall configurations satisfied Theorems 1, 2 and 3")
}
