// Churn: the full lifecycle the paper's §7 sketches as future work, built
// on its conceptual foundation — nodes join concurrently, leave
// gracefully, crash and get repaired, and tables are optimized for
// proximity — with the network verifiably consistent after every step.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/overlay"
	"hypercube/internal/topology"
)

func check(net *overlay.Network, step string) {
	if v := net.CheckConsistency(); len(v) != 0 {
		fmt.Fprintf(os.Stderr, "churn example: inconsistent after %s: %v\n", step, v[0])
		os.Exit(1)
	}
	fmt.Printf("%-40s network size %4d, consistent\n", step, net.Size())
}

func main() {
	p := id.Params{B: 16, D: 6}
	rng := rand.New(rand.NewSource(21))

	topo, err := topology.Generate(topology.Small(21))
	if err != nil {
		fmt.Fprintln(os.Stderr, "churn example:", err)
		os.Exit(1)
	}
	tl := overlay.NewTopologyLatency(topo)
	net := overlay.New(overlay.Config{
		Params:  p,
		Latency: tl.Func(),
		// Failure detection and join-protocol timeouts for step 5: inert
		// until RunFor drives the virtual clock.
		Liveness:     &liveness.Config{},
		Opts:         core.Options{Timeouts: core.Timeouts{RetryAfter: 500 * time.Millisecond}},
		TickInterval: 100 * time.Millisecond,
	})

	taken := make(map[id.ID]bool)
	refs := overlay.RandomRefs(p, 300, rng, taken)
	hosts := topo.AttachHosts(500, rng)
	for i, ref := range refs {
		tl.Bind(ref.ID, hosts[i])
	}
	net.BuildDirect(refs, rng)
	check(net, "initial network")

	// 1. A concurrent join wave.
	joiners := overlay.RandomRefs(p, 100, rng, taken)
	for i, j := range joiners {
		tl.Bind(j.ID, hosts[300+i])
		net.ScheduleJoin(j, refs[rng.Intn(len(refs))], 0)
	}
	net.Run()
	check(net, "after 100 concurrent joins")

	// 2. A concurrent wave of graceful leaves: each leaver hands its
	// holders the information to repair their tables.
	for i := 0; i < 60; i++ {
		if err := net.ScheduleLeave(joiners[i].ID, net.Engine().Now()); err != nil {
			fmt.Fprintln(os.Stderr, "churn example:", err)
			os.Exit(1)
		}
	}
	net.Run()
	gone := net.FinalizeLeaves()
	check(net, fmt.Sprintf("after %d concurrent leaves", len(gone)))

	// 3. Crashes: no goodbye; survivors repair via local scans, routed
	// queries, and orphan re-joins.
	for i := 0; i < 5; i++ {
		dead := refs[10+i].ID
		if err := net.InjectFailure(dead); err != nil {
			fmt.Fprintln(os.Stderr, "churn example:", err)
			os.Exit(1)
		}
		st := net.RecoverFailure(dead, rng, 0)
		fmt.Printf("  crash %v: %d holders, %d local + %d routed repairs, %d rejoins, %d emptied\n",
			dead, st.Holders, st.LocalRepairs, st.RoutedRepairs, st.Rejoined, st.Emptied)
	}
	check(net, "after 5 crashes + recovery")

	// 5. A self-healing crash: nobody is told who died. The survivors'
	// probes notice the silence, confirm it through other neighbors,
	// declare the failure, and repair their own tables.
	dead := refs[20].ID
	if err := net.InjectFailure(dead); err != nil {
		fmt.Fprintln(os.Stderr, "churn example:", err)
		os.Exit(1)
	}
	net.RunFor(30 * time.Second)
	ls := net.LivenessStats()
	fmt.Printf("  self-healed crash %v: %d probes, %d suspects, %d declared\n",
		dead, ls.ProbesSent, ls.Suspects, ls.Declared)
	check(net, "after 1 unannounced crash (self-healed)")

	// 6. Proximity optimization: swap entries for nearer qualifying nodes.
	before := net.MeasureStretch(500, rand.New(rand.NewSource(1)))
	opt := net.OptimizeTables(2)
	after := net.MeasureStretch(500, rand.New(rand.NewSource(1)))
	fmt.Printf("  optimization: %d entries switched, route stretch %.2f -> %.2f\n",
		opt.Improved, before.Mean, after.Mean)
	check(net, "after table optimization")
}
