// Package nemesis is the deterministic chaos-search harness: a typed,
// JSON-serializable fault-schedule model over the virtual-clock overlay
// simulator, a seeded generator that composes schedules from the full
// fault repertoire (churn, partitions, byzantine members, gray slowness,
// loss bursts, clock pauses, restart-from-persist), an invariant oracle
// evaluated at every quiescence point, and a delta-debugging shrinker
// that reduces a violating schedule to a minimal reproduction. The whole
// pipeline is bit-reproducible: the same seed yields the same schedule,
// the same verdicts, and the same shrunk repro, across runs and machines
// — the FoundationDB simulation-testing discipline applied to the
// paper's protocol stack.
package nemesis

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Op names one fault-schedule action. The strings are the wire format of
// repro files; renaming one invalidates recorded repros.
type Op string

const (
	// OpJoinWave admits Count simultaneous joiners through up to three
	// honest gateways, then waits for full admission.
	OpJoinWave Op = "join-wave"
	// OpLeave runs Count graceful (§7) departures to completion.
	OpLeave Op = "leave"
	// OpCrash kills Count members abruptly; survivors must detect and
	// repair on their own.
	OpCrash Op = "crash"
	// OpPartition cuts a minority of Frac members away for Dur, then
	// heals. Declarations must freeze on both sides (partition mode).
	OpPartition Op = "partition"
	// OpSlow marks Count members gray: alive and correct but ramping to
	// a per-side processing delay. They stay slow until the final settle.
	OpSlow Op = "slow"
	// OpByzantine marks Frac of the members hostile (mutating,
	// withholding, replaying). They stay hostile for the whole run.
	OpByzantine Op = "byzantine"
	// OpLoss raises the message-loss rate to Rate for Dur, then restores
	// lossless delivery.
	OpLoss Op = "loss"
	// OpPause clock-pauses Count members for Dur: their timers stall and
	// their inbound traffic bursts at resume. Dur is kept below the
	// declaration window by the generator, so a declaration is a finding.
	OpPause Op = "pause"
	// OpRestart persists Count members, crashes them, and immediately
	// restarts each from its dump (rejoin re-announce). With Corrupt,
	// the dump is bit-flipped first and the node must detect the damage
	// and fall back to a fresh join.
	OpRestart Op = "restart"
	// OpQuiesce settles the network (sync rounds until Definition 3.8
	// consistency, bounded) and runs the full invariant oracle.
	OpQuiesce Op = "quiesce"
)

// Action is one step of a fault schedule. Unused fields stay zero and
// are omitted from the JSON; Gap is virtual time the executor runs after
// the action completes, letting consequences overlap the next fault.
type Action struct {
	Op      Op            `json:"op"`
	Count   int           `json:"count,omitempty"`
	Frac    float64       `json:"frac,omitempty"`
	Rate    float64       `json:"rate,omitempty"`
	Dur     time.Duration `json:"dur,omitempty"`
	Gap     time.Duration `json:"gap,omitempty"`
	Corrupt bool          `json:"corrupt,omitempty"`
}

func (a Action) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", a.Op)
	if a.Count > 0 {
		fmt.Fprintf(&b, " count=%d", a.Count)
	}
	if a.Frac > 0 {
		fmt.Fprintf(&b, " frac=%.2f", a.Frac)
	}
	if a.Rate > 0 {
		fmt.Fprintf(&b, " rate=%.2f", a.Rate)
	}
	if a.Dur > 0 {
		fmt.Fprintf(&b, " dur=%v", a.Dur)
	}
	if a.Gap > 0 {
		fmt.Fprintf(&b, " gap=%v", a.Gap)
	}
	if a.Corrupt {
		b.WriteString(" corrupt")
	}
	return b.String()
}

// Schedule is a complete chaos scenario: the ID-space shape, the base
// network size, the seed that drives every in-run random choice, and the
// action sequence. Seed plus Steps fully determine the run.
type Schedule struct {
	Seed  uint64   `json:"seed"`
	B     int      `json:"b"`
	D     int      `json:"d"`
	Nodes int      `json:"nodes"`
	Steps []Action `json:"steps"`
}

// Validate rejects schedules the executor cannot run deterministically
// or that are internally nonsensical. It does not enforce the
// generator's safety bounds — hand-written schedules may exceed them on
// purpose (that is how tests inject violations).
func (s Schedule) Validate() error {
	if s.B < 2 || s.D < 1 {
		return fmt.Errorf("nemesis: bad ID space b=%d d=%d", s.B, s.D)
	}
	if s.Nodes < 4 {
		return fmt.Errorf("nemesis: base network of %d nodes is below the minimum of 4", s.Nodes)
	}
	for i, a := range s.Steps {
		switch a.Op {
		case OpJoinWave, OpLeave, OpCrash, OpSlow, OpPause, OpRestart:
			if a.Count < 1 {
				return fmt.Errorf("nemesis: step %d (%s): count %d", i, a.Op, a.Count)
			}
		case OpPartition, OpByzantine:
			if a.Frac <= 0 || a.Frac >= 1 {
				return fmt.Errorf("nemesis: step %d (%s): frac %v outside (0,1)", i, a.Op, a.Frac)
			}
		case OpLoss:
			if a.Rate <= 0 || a.Rate >= 1 {
				return fmt.Errorf("nemesis: step %d (%s): rate %v outside (0,1)", i, a.Op, a.Rate)
			}
		case OpQuiesce:
		default:
			return fmt.Errorf("nemesis: step %d: unknown op %q", i, a.Op)
		}
		switch a.Op {
		case OpPartition, OpLoss, OpPause:
			if a.Dur <= 0 {
				return fmt.Errorf("nemesis: step %d (%s): non-positive dur %v", i, a.Op, a.Dur)
			}
		}
	}
	return nil
}

// Marshal renders the schedule as indented JSON, the repro-file format.
func (s Schedule) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSchedule is the inverse of Marshal, with validation.
func ParseSchedule(data []byte) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return Schedule{}, fmt.Errorf("nemesis: parse schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// rng is the splitmix64 stream every schedule-level random choice draws
// from, keyed per (seed, step) so editing one step never shifts the
// randomness of the others — the property the shrinker depends on.
type rng struct{ state uint64 }

func newRNG(seed, step uint64) *rng {
	return &rng{state: seed ^ (step+1)*0x9e3779b97f4a7c15}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// between returns a uniform int in [lo, hi].
func (r *rng) between(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

func (r *rng) durBetween(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.next()%uint64(hi-lo))
}
