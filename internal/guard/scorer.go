package guard

import (
	"time"

	"hypercube/internal/id"
)

// Policy tunes the misbehavior scorer. The zero value selects the
// defaults documented per field, so &Policy{} enables scoring with
// sensible behavior.
type Policy struct {
	// Threshold is the score at which a peer is quarantined. Each
	// violation charges one unit (callers may weight differently), so the
	// default 8 quarantines after 8 violations inside the decay window.
	Threshold float64
	// Decay is the time for one unit of score to drain away; a peer that
	// stops misbehaving is forgiven at rate 1/Decay. Default 5s.
	Decay time.Duration
	// Cooldown is how long a quarantined peer's traffic is dropped at
	// ingress before it is released (score reset). Default 30s.
	Cooldown time.Duration
	// MaxPeers bounds the tracked-peer map; when full, the lowest-scored
	// tracked peer is evicted to admit a new offender, so an attacker
	// rotating spoofed IDs costs bounded memory. Default 1024.
	MaxPeers int
}

func (p Policy) withDefaults() Policy {
	if p.Threshold <= 0 {
		p.Threshold = 8
	}
	if p.Decay <= 0 {
		p.Decay = 5 * time.Second
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 30 * time.Second
	}
	if p.MaxPeers <= 0 {
		p.MaxPeers = 1024
	}
	return p
}

// Stats are the scorer's lifetime counters plus the current quarantine
// population.
type Stats struct {
	// Charges counts violations charged; Quarantines peers that crossed
	// the threshold; Releases quarantines that expired; Evictions tracked
	// peers displaced by the MaxPeers bound.
	Charges     int
	Quarantines int
	Releases    int
	Evictions   int
	// Quarantined is how many peers are quarantined right now (as of the
	// last Charge/Quarantined call that observed them).
	Quarantined int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Charges += other.Charges
	s.Quarantines += other.Quarantines
	s.Releases += other.Releases
	s.Evictions += other.Evictions
	s.Quarantined += other.Quarantined
}

type peerScore struct {
	score float64
	last  time.Duration // when score was last updated
	until time.Duration // quarantined until; 0 = not quarantined
}

// Scorer tracks per-peer misbehavior with linear decay and quarantine.
// It is not safe for concurrent use; drive it from the same goroutine
// (or under the same lock) as the protocol machine it protects. Time is
// supplied by the caller as a duration since the run started, matching
// the clocks of both runtimes (virtual in the simulator, wall in TCP).
type Scorer struct {
	pol   Policy
	peers map[id.ID]*peerScore
	stats Stats
}

// NewScorer creates a scorer under the given policy.
func NewScorer(pol Policy) *Scorer {
	return &Scorer{pol: pol.withDefaults(), peers: make(map[id.ID]*peerScore)}
}

// Policy returns the effective (defaulted) policy.
func (s *Scorer) Policy() Policy { return s.pol }

// Charge records one violation of the given weight by peer x at time
// now. It returns true when the charge pushed the peer over the
// threshold — the moment it entered quarantine.
func (s *Scorer) Charge(x id.ID, weight float64, now time.Duration) bool {
	s.stats.Charges++
	ps := s.peers[x]
	if ps == nil {
		if len(s.peers) >= s.pol.MaxPeers {
			s.evict()
		}
		ps = &peerScore{last: now}
		s.peers[x] = ps
	}
	s.expire(ps, now)
	if ps.until > 0 {
		return false // already quarantined; the clock keeps running
	}
	ps.score = s.decayed(ps, now) + weight
	ps.last = now
	if ps.score >= s.pol.Threshold {
		ps.until = now + s.pol.Cooldown
		s.stats.Quarantines++
		s.stats.Quarantined++
		return true
	}
	return false
}

// Quarantined reports whether peer x is quarantined at time now,
// releasing it first if its cooldown expired.
func (s *Scorer) Quarantined(x id.ID, now time.Duration) bool {
	ps := s.peers[x]
	if ps == nil {
		return false
	}
	s.expire(ps, now)
	return ps.until > 0
}

// expire releases a quarantine whose cooldown has passed, resetting the
// peer's score so it restarts with a clean slate.
func (s *Scorer) expire(ps *peerScore, now time.Duration) {
	if ps.until > 0 && now >= ps.until {
		ps.until = 0
		ps.score = 0
		ps.last = now
		s.stats.Releases++
		s.stats.Quarantined--
	}
}

// decayed returns the peer's score after linear decay since last update.
func (s *Scorer) decayed(ps *peerScore, now time.Duration) float64 {
	if now <= ps.last {
		return ps.score
	}
	drained := float64(now-ps.last) / float64(s.pol.Decay)
	if drained >= ps.score {
		return 0
	}
	return ps.score - drained
}

// evict removes the lowest-scored non-quarantined tracked peer (or the
// quarantined peer with the earliest release if all are quarantined).
func (s *Scorer) evict() {
	var victim id.ID
	best := -1.0
	found := false
	for x, ps := range s.peers {
		score := ps.score
		if ps.until > 0 {
			// Keep quarantined peers tracked in preference to scored
			// ones: forgetting a quarantine would lift it early.
			score = s.pol.Threshold + float64(ps.until)
		}
		if !found || score < best {
			victim, best, found = x, score, true
		}
	}
	if found {
		if s.peers[victim].until > 0 {
			s.stats.Quarantined--
		}
		delete(s.peers, victim)
		s.stats.Evictions++
	}
}

// Stats returns a copy of the scorer's counters.
func (s *Scorer) Stats() Stats { return s.stats }
