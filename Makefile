GO ?= go

.PHONY: all build test race bench vet fmt cover experiments

all: build vet test

build:
	$(GO) build ./...

# The default test path includes vet and a race-detector pass over the
# packages with goroutine concurrency or clock-driven state (transport
# writers, the liveness prober, the machines' Tick path) so races cannot
# land silently.
test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/core/ ./internal/overlay/ ./internal/liveness/ ./internal/transport/...

race:
	$(GO) test -race ./internal/core/ ./internal/overlay/ ./internal/liveness/ ./internal/transport/...

bench:
	$(GO) test -bench . -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

cover:
	$(GO) test -cover ./internal/...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/figure15a
	$(GO) run ./cmd/figure15b
	$(GO) run ./cmd/jointable
	$(GO) run ./cmd/consistency
	$(GO) run ./cmd/csettree
	$(GO) run ./cmd/baselinecmp
	$(GO) run ./cmd/msgsize
	$(GO) run ./cmd/churn
	$(GO) run ./cmd/workload -quiet
