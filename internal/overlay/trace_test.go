package overlay

import (
	"bytes"
	"testing"
	"time"

	"hypercube/internal/obs"
)

// TestWaveTraceMatchesResult runs a join wave with a JSONL sink and
// checks the trace against the wave's own records: one completed join
// span per joiner, virtual-clock stamps, and the same trace schema the
// TCP runtime produces (so cmd/tracestat works on either).
func TestWaveTraceMatchesResult(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	res, err := RunWave(WaveConfig{Params: p164, N: 40, M: 25, Seed: 7, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSNodes {
		t.Fatal("wave did not complete")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := obs.Analyze(events)
	completed := sum.Completed()
	if len(completed) != 25 {
		t.Fatalf("completed join spans = %d, want 25", len(completed))
	}
	if len(sum.Joins) != 25 {
		t.Fatalf("join spans = %d, want 25 (seeds must not count)", len(sum.Joins))
	}

	// Spans agree with the wave's own JoinRecords (same virtual clock).
	recEnd := make(map[string]time.Duration, len(res.Records))
	for _, rec := range res.Records {
		recEnd[rec.Ref.ID.String()] = rec.Ended
	}
	for _, span := range completed {
		want, ok := recEnd[span.Node]
		if !ok {
			t.Fatalf("span for unknown joiner %s", span.Node)
		}
		if span.End != want {
			t.Errorf("joiner %s: span end %v, record end %v", span.Node, span.End, want)
		}
		if span.Total() <= 0 {
			t.Errorf("joiner %s: non-positive total %v", span.Node, span.Total())
		}
		if span.Copying <= 0 {
			t.Errorf("joiner %s: no copying phase recorded", span.Node)
		}
	}

	// Send events must agree with the wave's per-type accounting: every
	// joiner sent at least one CpRstMsg and one JoinWaitMsg.
	if sum.Sent["CpRstMsg"] < 25 || sum.Sent["JoinWaitMsg"] < 25 {
		t.Errorf("trace sends CpRst=%d JoinWait=%d, want >= 25 each",
			sum.Sent["CpRstMsg"], sum.Sent["JoinWaitMsg"])
	}
	if sum.Span != res.VirtualDuration {
		// The last event is at or before quiescence.
		if sum.Span > res.VirtualDuration {
			t.Errorf("trace span %v exceeds virtual duration %v", sum.Span, res.VirtualDuration)
		}
	}
}

// TestWaveNopSinkIsDefault confirms an untraced wave emits nothing and
// a Nop sink behaves identically to nil.
func TestWaveNopSinkIsDefault(t *testing.T) {
	res, err := RunWave(WaveConfig{Params: p164, N: 20, M: 10, Seed: 3, Sink: obs.Nop})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSNodes {
		t.Fatal("wave did not complete")
	}
	base, err := RunWave(WaveConfig{Params: p164, N: 20, M: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != base.Events || res.VirtualDuration != base.VirtualDuration {
		t.Errorf("Nop-sink wave diverged: events %d vs %d, duration %v vs %v",
			res.Events, base.Events, res.VirtualDuration, base.VirtualDuration)
	}
}
