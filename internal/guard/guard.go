// Package guard is the protocol's admission-control layer: semantic
// validation of incoming messages plus a per-peer misbehavior scorer
// with decay and quarantine.
//
// The paper's consistency argument (Theorems 1–2) assumes every
// delivered message is well-formed and every peer follows Figures 5–14.
// A deployed overlay cannot assume either: measured Kademlia-type
// networks see stale, corrupted, and adversarial routing state as the
// norm. Check enforces the assumptions the handlers in internal/core
// rely on — levels in [0,d), digits in [0,b), suffix invariants against
// the sender's ID, table-snapshot owner/state/range checks, ref
// parseability — so one malformed message costs a counter, not a node.
// The Scorer turns repeated violations into a quarantine: the peer's
// traffic is dropped at ingress until a cooldown expires.
package guard

import (
	"fmt"

	"hypercube/internal/id"
	"hypercube/internal/msg"
	"hypercube/internal/table"
)

// maxAddrLen bounds the transport address carried in any ref. Addresses
// are opaque strings; without a bound a hostile peer could ship
// megabytes per ref and the receiver would faithfully store them in its
// table and reverse sets.
const maxAddrLen = 256

// Check validates one delivered envelope against the invariants the
// protocol handlers assume, for the receiver self in space p. A nil
// return means every field is safe to hand to internal/core; an error
// names the first violated invariant (suitable as an obs event detail).
//
// Check rejects what is provably malformed, not what is merely a lie: a
// peer claiming a wrong address for a third node, or withholding table
// entries, produces well-formed messages no receiver can refute locally.
// Those cost the protocol retries, never memory or a panic.
func Check(p id.Params, self id.ID, env msg.Envelope) error {
	if env.Msg == nil {
		return fmt.Errorf("nil message")
	}
	if env.To.ID != self {
		return fmt.Errorf("misaddressed: envelope for %v", env.To.ID)
	}
	if err := checkRef(p, env.From, false); err != nil {
		return fmt.Errorf("bad sender: %w", err)
	}
	if env.From.ID == self {
		return fmt.Errorf("bad sender: envelope from self")
	}
	from := env.From.ID
	switch m := env.Msg.(type) {
	case msg.CpRst:
		if m.Level < 0 || m.Level >= p.D {
			return fmt.Errorf("CpRst level %d out of [0,%d)", m.Level, p.D)
		}
	case msg.CpRly:
		return checkTable(p, from, m.Table)
	case msg.JoinWait:
	case msg.JoinWaitRly:
		if m.R != msg.Positive && m.R != msg.Negative {
			return fmt.Errorf("JoinWaitRly result %d invalid", m.R)
		}
		if err := checkRef(p, m.U, false); err != nil {
			return fmt.Errorf("JoinWaitRly U: %w", err)
		}
		if m.R == msg.Negative && m.U.ID == self {
			// Following a negative redirect to ourselves would make the
			// joiner JoinWait itself — a self-delivery the handlers never
			// expect.
			return fmt.Errorf("JoinWaitRly redirects to self")
		}
		return checkTable(p, from, m.Table)
	case msg.JoinNoti:
		if m.NotiLevel < 0 || m.NotiLevel >= p.D {
			return fmt.Errorf("JoinNoti noti_level %d out of [0,%d)", m.NotiLevel, p.D)
		}
		if n := m.FillVector.Len(); n != 0 && n != p.D*p.B {
			return fmt.Errorf("JoinNoti fill vector length %d, want 0 or %d", n, p.D*p.B)
		}
		return checkTable(p, from, m.Table)
	case msg.JoinNotiRly:
		if m.R != msg.Positive && m.R != msg.Negative {
			return fmt.Errorf("JoinNotiRly result %d invalid", m.R)
		}
		return checkTable(p, from, m.Table)
	case msg.InSysNoti:
	case msg.SpeNoti:
		if err := checkRef(p, m.X, false); err != nil {
			return fmt.Errorf("SpeNoti X: %w", err)
		}
		if err := checkRef(p, m.Y, false); err != nil {
			return fmt.Errorf("SpeNoti Y: %w", err)
		}
		if m.Y.ID == self {
			// The handler stores Y at level CommonSuffixLen(self, Y.ID),
			// which is d for Y == self — out of table range.
			return fmt.Errorf("SpeNoti announces the receiver to itself")
		}
	case msg.SpeNotiRly:
		if err := checkRef(p, m.Y, false); err != nil {
			return fmt.Errorf("SpeNotiRly Y: %w", err)
		}
	case msg.RvNghNoti:
		if err := checkCoords(p, m.Level, m.Digit); err != nil {
			return fmt.Errorf("RvNghNoti %w", err)
		}
		if err := checkState(m.State); err != nil {
			return fmt.Errorf("RvNghNoti %w", err)
		}
		// Suffix invariant: the sender claims to have stored us at
		// (Level,Digit) of its table, so we must carry that entry's
		// desired suffix — Digit · from[Level-1..0].
		if !self.HasSuffix(from.Suffix(m.Level).Extend(m.Digit)) {
			return fmt.Errorf("RvNghNoti entry (%d,%d) does not qualify the receiver", m.Level, m.Digit)
		}
	case msg.RvNghNotiRly:
		if err := checkCoords(p, m.Level, m.Digit); err != nil {
			return fmt.Errorf("RvNghNotiRly %w", err)
		}
		if err := checkState(m.State); err != nil {
			return fmt.Errorf("RvNghNotiRly %w", err)
		}
	case msg.Leave:
		return checkTable(p, from, m.Table)
	case msg.LeaveRly:
	case msg.Find:
		if err := checkSuffix(p, m.Want); err != nil {
			return fmt.Errorf("Find want: %w", err)
		}
		if m.Want.Len() == 0 {
			// The routing step indexes entry (k, Want[k]); an empty wanted
			// suffix has no digits to route on.
			return fmt.Errorf("Find with empty suffix")
		}
		if err := checkRef(p, m.Origin, false); err != nil {
			return fmt.Errorf("Find origin: %w", err)
		}
		if !m.Avoid.IsNull() && m.Avoid.Len() != p.D {
			return fmt.Errorf("Find avoid id has %d digits, want %d", m.Avoid.Len(), p.D)
		}
	case msg.FindRly:
		if err := checkSuffix(p, m.Want); err != nil {
			return fmt.Errorf("FindRly want: %w", err)
		}
		if !m.Found.IsZero() {
			if err := checkRef(p, m.Found.Ref(), false); err != nil {
				return fmt.Errorf("FindRly found: %w", err)
			}
			if err := checkState(m.Found.State); err != nil {
				return fmt.Errorf("FindRly found: %w", err)
			}
			// The found node is installed at entries whose desired suffix
			// is Want; a reply not carrying it would poison the table.
			if !m.Found.ID.HasSuffix(m.Want) {
				return fmt.Errorf("FindRly found %v lacks wanted suffix %v", m.Found.ID, m.Want)
			}
		}
	case msg.Ping:
		if err := checkRef(p, m.Origin, true); err != nil {
			return fmt.Errorf("Ping origin: %w", err)
		}
		if err := checkRef(p, m.Target, true); err != nil {
			return fmt.Errorf("Ping target: %w", err)
		}
	case msg.Pong:
	case msg.FailedNoti:
		if err := checkRef(p, m.Failed, false); err != nil {
			return fmt.Errorf("FailedNoti failed: %w", err)
		}
	case msg.SyncReq:
		if n := m.Fill.Len(); n != 0 && n != p.D*p.B {
			return fmt.Errorf("SyncReq fill vector length %d, want 0 or %d", n, p.D*p.B)
		}
	case msg.SyncRly:
		if n := m.Fill.Len(); n != 0 && n != p.D*p.B {
			return fmt.Errorf("SyncRly fill vector length %d, want 0 or %d", n, p.D*p.B)
		}
		return checkTable(p, from, m.Table)
	case msg.SyncPush:
		return checkTable(p, from, m.Table)
	case msg.SamplePush:
	case msg.SamplePullReq:
	case msg.SamplePullRly:
		if len(m.Refs) > msg.MaxSampleRefs {
			return fmt.Errorf("SamplePullRly with %d refs exceeds %d", len(m.Refs), msg.MaxSampleRefs)
		}
		for i, r := range m.Refs {
			if err := checkRef(p, r, false); err != nil {
				return fmt.Errorf("SamplePullRly ref %d: %w", i, err)
			}
			// Strictly ascending IDs: the canonical order, which also rules
			// out duplicate references padding the reply.
			if i > 0 && !m.Refs[i-1].ID.Less(r.ID) {
				return fmt.Errorf("SamplePullRly refs out of order at %d", i)
			}
		}
	default:
		return fmt.Errorf("unknown message type %T", env.Msg)
	}
	return nil
}

// checkRef validates a node reference: parseable d-digit ID with every
// digit in [0,b), and a bounded address. allowZero accepts the zero ref
// (fields where "absent" is legal).
func checkRef(p id.Params, r table.Ref, allowZero bool) error {
	if r.IsZero() {
		if allowZero {
			return nil
		}
		return fmt.Errorf("null ref")
	}
	if r.ID.Len() != p.D {
		return fmt.Errorf("id %v has %d digits, want %d", r.ID, r.ID.Len(), p.D)
	}
	for i := 0; i < r.ID.Len(); i++ {
		if d := r.ID.Digit(i); d < 0 || d >= p.B {
			return fmt.Errorf("id digit %d out of base %d", d, p.B)
		}
	}
	if len(r.Addr) > maxAddrLen {
		return fmt.Errorf("address of %d bytes exceeds %d", len(r.Addr), maxAddrLen)
	}
	return nil
}

// checkSuffix validates a wanted suffix: at most d digits, each in [0,b).
func checkSuffix(p id.Params, s id.Suffix) error {
	if s.Len() > p.D {
		return fmt.Errorf("suffix of %d digits exceeds d=%d", s.Len(), p.D)
	}
	for i := 0; i < s.Len(); i++ {
		if d := s.Digit(i); d < 0 || d >= p.B {
			return fmt.Errorf("suffix digit %d out of base %d", d, p.B)
		}
	}
	return nil
}

// checkCoords validates a table coordinate pair.
func checkCoords(p id.Params, level, digit int) error {
	if level < 0 || level >= p.D {
		return fmt.Errorf("level %d out of [0,%d)", level, p.D)
	}
	if digit < 0 || digit >= p.B {
		return fmt.Errorf("digit %d out of [0,%d)", digit, p.B)
	}
	return nil
}

// checkState validates a neighbor state bit.
func checkState(s table.State) error {
	if s != table.StateT && s != table.StateS {
		return fmt.Errorf("state %d invalid", s)
	}
	return nil
}

// checkTable validates an attached table snapshot: the owner must be the
// sender (every protocol message attaches the sender's own table), and
// every entry must satisfy the §2.1 suffix invariant with a valid state
// (Snapshot.Validate). The zero snapshot — no table attached — is legal;
// handlers treat it as a withheld table.
func checkTable(p id.Params, from id.ID, snap table.Snapshot) error {
	if snap.IsZero() {
		return nil
	}
	if snap.Params() != p {
		return fmt.Errorf("table in space b=%d d=%d, want b=%d d=%d",
			snap.Params().B, snap.Params().D, p.B, p.D)
	}
	if snap.Owner() != from {
		return fmt.Errorf("table owned by %v attached by %v", snap.Owner(), from)
	}
	if err := snap.Validate(); err != nil {
		return fmt.Errorf("bad table: %w", err)
	}
	var bad error
	snap.ForEach(func(level, digit int, n table.Neighbor) {
		if bad == nil && len(n.Addr) > maxAddrLen {
			bad = fmt.Errorf("table entry (%d,%d) address of %d bytes exceeds %d",
				level, digit, len(n.Addr), maxAddrLen)
		}
	})
	return bad
}
