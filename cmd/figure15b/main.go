// Command figure15b regenerates Figure 15(b) of Liu & Lam (ICDCS 2003):
// the cumulative distribution of the number of JoinNotiMsg sent by each
// joining node, measured by event-driven simulation over a transit-stub
// topology with 8320 routers.
//
// The paper's two setups are reproduced: 4096 attached end hosts of which
// 3096 form the initial consistent network and 1000 join concurrently,
// and 8192 hosts with 7192 existing and 1000 joining — each with b=16 and
// d ∈ {8, 40}. All joins start at the same instant, as in the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hypercube/internal/analysis"
	"hypercube/internal/id"
	"hypercube/internal/overlay"
	"hypercube/internal/stats"
	"hypercube/internal/topology"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "simulation seed")
		m     = flag.Int("m", 1000, "number of concurrently joining nodes")
		maxX  = flag.Int("maxx", 50, "largest JoinNotiMsg count on the x axis")
		small = flag.Bool("small", false, "run a reduced-scale variant (for smoke tests)")
	)
	flag.Parse()

	setups := []struct {
		n, d int
	}{
		{3096, 8}, {3096, 40}, {7192, 8}, {7192, 40},
	}
	joiners := *m
	topoCfg := topology.Default8320(*seed)
	if *small {
		for i := range setups {
			setups[i].n /= 16
		}
		joiners = *m / 16
		topoCfg = topology.Small(*seed)
	}

	fmt.Println("Figure 15(b): CDF of the number of JoinNotiMsg sent by a joining node")
	fmt.Printf("topology: %d routers (transit-stub), all joins start at t=0\n\n", topoCfg.RouterCount())

	var series []stats.Series
	for _, su := range setups {
		start := time.Now()
		topo, err := topology.Generate(topoCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure15b: topology: %v\n", err)
			os.Exit(1)
		}
		res, err := overlay.RunWave(overlay.WaveConfig{
			Params:   id.Params{B: 16, D: su.d},
			N:        su.n,
			M:        joiners,
			Seed:     *seed,
			Topology: topo,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure15b: wave: %v\n", err)
			os.Exit(1)
		}
		if !res.Consistent() || !res.AllSNodes {
			fmt.Fprintf(os.Stderr, "figure15b: n=%d d=%d: consistency violated (%d violations, allS=%v)\n",
				su.n, su.d, len(res.Violations), res.AllSNodes)
			os.Exit(1)
		}
		label := fmt.Sprintf("n=%d, m=%d, b=16, d=%d", su.n, joiners, su.d)
		cdf := stats.NewCDF(res.JoinNoti)
		series = append(series, stats.Series{Label: label, Points: cdf.Points(0, *maxX)})
		bound := analysis.UpperBoundJoinNoti(16, su.d, su.n, joiners)
		fmt.Printf("%-28s mean JoinNotiMsg %.3f (Theorem 5 bound %.3f), consistent, %d events, %v wall\n",
			label, res.MeanJoinNoti(), bound, res.Events, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println()
	fmt.Print(stats.FormatTable(series, "#JoinNotiMsg"))
}
