package obs

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	want := []Event{
		{T: time.Second, Node: "0123", Kind: KindJoinStart, Peer: "4567"},
		{T: 2 * time.Second, Node: "0123", Kind: KindStatus, Detail: "copying"},
		{T: 3 * time.Second, Node: "0123", Kind: KindSend, Peer: "4567", Msg: "CpRstMsg", Seq: 7, N: 2},
	}
	for _, e := range want {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := s.Emitted(); got != len(want) {
		t.Fatalf("emitted = %d, want %d", got, len(want))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"kind\":\"send\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestRingOverflowDrain(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Seq: uint64(i)})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	ev := r.Drain()
	if len(ev) != 4 {
		t.Fatalf("drained %d, want 4", len(ev))
	}
	for i, e := range ev {
		if want := uint64(6 + i); e.Seq != want {
			t.Errorf("drain[%d].Seq = %d, want %d (oldest-first)", i, e.Seq, want)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after drain")
	}
	if ev := r.Drain(); len(ev) != 0 {
		t.Fatalf("second drain returned %d events", len(ev))
	}
}

func TestNopNormalization(t *testing.T) {
	if !IsNop(nil) || !IsNop(Nop) {
		t.Fatal("nil and Nop must both be nop")
	}
	if IsNop(NewRing(1)) {
		t.Fatal("a real sink is not nop")
	}
	if Clocked(Nop, func() time.Duration { return 0 }) != nil {
		t.Fatal("Clocked(Nop) should collapse to nil")
	}
	if Tee(nil, Nop) != nil {
		t.Fatal("Tee of only nops should collapse to nil")
	}
	r := NewRing(1)
	if Tee(nil, r, Nop) != Sink(r) {
		t.Fatal("Tee with one live sink should return it directly")
	}
}

func TestClockedStamps(t *testing.T) {
	r := NewRing(8)
	now := 5 * time.Second
	c := Clocked(r, func() time.Duration { return now })
	c.Emit(Event{Node: "x", Kind: KindSend})
	now = 9 * time.Second
	c.Emit(Event{Node: "x", Kind: KindRecv})
	ev := r.Drain()
	if ev[0].T != 5*time.Second || ev[1].T != 9*time.Second {
		t.Fatalf("stamps = %v, %v", ev[0].T, ev[1].T)
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "a counter")
	c.Add(3)
	v := reg.CounterVec("test_by_type_total", "a vec", "type")
	v.With("b").Inc()
	v.With("a").Add(2)
	g := reg.Gauge("test_depth", "a gauge")
	g.Set(1.5)
	reg.GaugeFunc("test_uptime_seconds", "computed", func() float64 { return 42 })
	h := reg.Histogram("test_latency_seconds", "a histogram", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	body := buf.String()
	for _, want := range []string{
		"# HELP test_total a counter",
		"# TYPE test_total counter",
		"test_total 3",
		"test_by_type_total{type=\"a\"} 2",
		"test_by_type_total{type=\"b\"} 1",
		"# TYPE test_depth gauge",
		"test_depth 1.5",
		"test_uptime_seconds 42",
		"# TYPE test_latency_seconds histogram",
		"test_latency_seconds_bucket{le=\"0.1\"} 1",
		"test_latency_seconds_bucket{le=\"1\"} 2",
		"test_latency_seconds_bucket{le=\"10\"} 2",
		"test_latency_seconds_bucket{le=\"+Inf\"} 3",
		"test_latency_seconds_sum 99.55",
		"test_latency_seconds_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
	// Label values are sorted, so scrapes are deterministic.
	if strings.Index(body, `type="a"`) > strings.Index(body, `type="b"`) {
		t.Error("vec label values not sorted")
	}
}

func TestRegistryReregisterReturnsSame(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "x")
	b := reg.Counter("dup_total", "x")
	if a != b {
		t.Fatal("re-registering the same counter must return the original")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliases out of sync")
	}
}

// TestRegistryConcurrent hammers every instrument kind from concurrent
// goroutines while a scraper renders the registry; run under -race this
// is the registry's data-race proof.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("conc_total", "")
	v := reg.CounterVec("conc_by_type_total", "", "type")
	g := reg.Gauge("conc_gauge", "")
	h := reg.Histogram("conc_hist", "", LatencyBuckets())

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("t%d", w%3)
			for i := 0; i < iters; i++ {
				c.Inc()
				v.With(label).Inc()
				g.Set(float64(i))
				h.Observe(float64(i) * 0.001)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			reg.WritePrometheus(&buf)
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestAnalyzerJoinSpans(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	events := []Event{
		// Node A: clean join with all three phases.
		{T: ms(0), Node: "A", Kind: KindJoinStart, Peer: "G"},
		{T: ms(0), Node: "A", Kind: KindStatus, Detail: "copying"},
		{T: ms(10), Node: "A", Kind: KindStatus, Detail: "waiting"},
		{T: ms(30), Node: "A", Kind: KindStatus, Detail: "notifying"},
		{T: ms(70), Node: "A", Kind: KindStatus, Detail: "in_system"},
		// Node B: one restart, never completes.
		{T: ms(5), Node: "B", Kind: KindJoinStart, Peer: "G"},
		{T: ms(5), Node: "B", Kind: KindStatus, Detail: "copying"},
		{T: ms(50), Node: "B", Kind: KindJoinStart, Peer: "G", N: 1},
		// Node G: seed, only ever in_system — not a join.
		{T: ms(0), Node: "G", Kind: KindStatus, Detail: "in_system"},
		// Traffic.
		{T: ms(2), Node: "A", Kind: KindSend, Peer: "G", Msg: "CpRstMsg"},
		{T: ms(3), Node: "G", Kind: KindRecv, Peer: "A", Msg: "CpRstMsg"},
		{T: ms(4), Node: "A", Kind: KindResend, Peer: "G", Msg: "CpRstMsg", N: 1},
	}
	sum := Analyze(events)
	if sum.Events != len(events) {
		t.Fatalf("events = %d", sum.Events)
	}
	if len(sum.Joins) != 2 {
		t.Fatalf("joins = %d, want 2 (seed must not count)", len(sum.Joins))
	}
	a := sum.Joins[0]
	if a.Node != "A" || !a.Completed {
		t.Fatalf("first join = %+v", a)
	}
	if a.Total() != ms(70) {
		t.Errorf("A total = %v, want 70ms", a.Total())
	}
	if a.Copying != ms(10) || a.Waiting != ms(20) || a.Notifying != ms(40) {
		t.Errorf("A phases = %v/%v/%v, want 10ms/20ms/40ms", a.Copying, a.Waiting, a.Notifying)
	}
	b := sum.Joins[1]
	if b.Node != "B" || b.Completed || b.Restarts != 1 {
		t.Fatalf("second join = %+v", b)
	}
	if b.Total() != 0 {
		t.Errorf("incomplete join Total = %v, want 0", b.Total())
	}
	comp := sum.Completed()
	if len(comp) != 1 || comp[0].Node != "A" {
		t.Fatalf("completed = %+v", comp)
	}
	if sum.Sent["CpRstMsg"] != 1 || sum.Received["CpRstMsg"] != 1 || sum.Resends != 1 {
		t.Errorf("traffic counts wrong: %+v", sum)
	}
	if sum.Span != ms(70) {
		t.Errorf("span = %v", sum.Span)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{4, 1, 3, 2, 5}
	if got := Percentile(ds, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(ds, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(ds, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty = %v", got)
	}
	// Input must not be mutated.
	if ds[0] != 4 {
		t.Error("Percentile sorted its input in place")
	}
}
