package overlay

import (
	"math/rand"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/sampling"
)

func samplingConfig(seed int64) Config {
	return Config{
		Params:  id.Params{B: 4, D: 4},
		Latency: ConstantLatency(5 * time.Millisecond),
		Opts: core.Options{Timeouts: core.Timeouts{
			RetryAfter:  300 * time.Millisecond,
			MaxAttempts: 2,
		}},
		Sampling: &sampling.Config{
			ViewSize: 8,
			Interval: 500 * time.Millisecond,
			Seed:     seed,
		},
		TickInterval: 100 * time.Millisecond,
	}
}

// TestSamplingViewsConverge: with the gossip layer enabled, every node's
// view fills from push-pull rounds (bootstrapped off its table) and the
// min-wise samplers hold peers to hand out.
func TestSamplingViewsConverge(t *testing.T) {
	cfg := samplingConfig(7)
	rng := rand.New(rand.NewSource(7))
	net := New(cfg)
	refs := RandomRefs(cfg.Params, 24, rng, nil)
	net.BuildDirect(refs, rng)
	net.RunFor(10 * time.Second)

	for _, ref := range refs {
		s, ok := net.Sampler(ref.ID)
		if !ok {
			t.Fatalf("node %v has no sampling engine", ref.ID)
		}
		if len(s.View()) == 0 {
			t.Errorf("node %v: empty view after 10s of rounds", ref.ID)
		}
		if len(s.Sample(4)) == 0 {
			t.Errorf("node %v: samplers empty after 10s of rounds", ref.ID)
		}
	}
	st := net.SamplingStats()
	if st.Rounds == 0 || st.PushesReceived == 0 || st.PullsAnswered == 0 {
		t.Errorf("no gossip activity: %+v", st)
	}
}

// TestSamplingFeedsGatewayRestart: a joiner whose only gateway crashes
// mid-join — and is then declared failed — restarts through a peer from
// its sampling layer instead of wedging on the dead bootstrap.
func TestSamplingFeedsGatewayRestart(t *testing.T) {
	cfg := samplingConfig(11)
	rng := rand.New(rand.NewSource(11))
	net := New(cfg)
	taken := make(map[id.ID]bool)
	refs := RandomRefs(cfg.Params, 12, rng, taken)
	net.BuildDirect(refs, rng)

	deadGw := refs[0]
	joiner := RandomRefs(cfg.Params, 1, rng, taken)[0]
	jm := net.ScheduleJoin(joiner, deadGw, time.Second) // no static fallbacks
	s, ok := net.Sampler(joiner.ID)
	if !ok {
		t.Fatal("joiner has no sampling engine")
	}
	s.SeedPeers(refs[1], refs[2], refs[3])

	net.Engine().ScheduleAt(500*time.Millisecond, func() {
		if err := net.InjectFailure(deadGw.ID); err != nil {
			t.Errorf("crash of %v: %v", deadGw.ID, err)
		}
	})
	// The failure detector (here: the oracle) tells the joiner its
	// bootstrap died; the restart must come from the sampled peers.
	net.Engine().ScheduleAt(3*time.Second, func() {
		net.transmit(jm.DeclareFailed(deadGw))
	})

	net.RunFor(30 * time.Second)
	if !jm.IsSNode() {
		t.Fatalf("joiner stuck in %v: sampled-peer restart did not happen", jm.Status())
	}
	// Only the joiner's recovery is under test; the survivors still
	// reference the crashed gateway because nothing gossiped the failure
	// (no detector in this config), so no whole-network consistency check.
}
