package tcptransport

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"hypercube/internal/core"
	"hypercube/internal/id"
	"hypercube/internal/liveness"
	"hypercube/internal/table"
)

// TestTCPCrashDetectionAndRepair kills one node of a live four-node
// network without any goodbye. The survivors' probe goroutines must
// notice, declare the crash, and scrub the dead node from their tables —
// no test-side repair calls, only the node's own machinery. The admin
// /status endpoint must expose the detector's counters throughout.
func TestTCPCrashDetectionAndRepair(t *testing.T) {
	lc := liveness.Config{
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   200 * time.Millisecond,
		SuspectAfter:   2,
		IndirectProbes: 2,
		ConfirmRounds:  2,
	}
	opts := core.Options{Timeouts: core.Timeouts{
		RetryAfter:  250 * time.Millisecond,
		MaxAttempts: 4,
	}}
	options := []Option{WithLiveness(lc), WithMaxAttempts(2), WithBackoff(5*time.Millisecond, 50*time.Millisecond)}

	seed, err := StartSeed(p163, opts, id.MustParse(p163, "abc"), "127.0.0.1:0", options...)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	nodes := []*Node{seed}
	for _, s := range []string{"123", "2b3", "3ac"} {
		j, err := StartJoiner(p163, opts, id.MustParse(p163, s), "127.0.0.1:0", options...)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		if err := j.Join(seed.Ref()); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := j.AwaitStatus(ctx, core.StatusInSystem); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		nodes = append(nodes, j)
	}

	// Sanity: /status reports the probe counters (acceptance criterion).
	if st := adminStatus(t, seed); st.Liveness == nil {
		t.Fatal("/status has no liveness section despite WithLiveness")
	}

	victim := nodes[2]
	victimID := victim.Ref().ID
	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	survivors := []*Node{nodes[0], nodes[1], nodes[3]}

	// Every survivor must scrub the victim from its table autonomously.
	deadline := time.Now().Add(30 * time.Second)
	for _, n := range survivors {
		for {
			clean := true
			n.Snapshot().ForEach(func(level, digit int, nb table.Neighbor) {
				if nb.ID == victimID {
					clean = false
				}
			})
			if clean {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %v still stores crashed %v", n.Ref().ID, victimID)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	declared := 0
	for _, n := range survivors {
		stats, _, ok := n.LivenessStats()
		if !ok {
			t.Fatalf("node %v reports no liveness", n.Ref().ID)
		}
		if stats.ProbesSent == 0 {
			t.Errorf("node %v sent no probes", n.Ref().ID)
		}
		declared += stats.Declared
	}
	if declared == 0 {
		t.Error("crash was scrubbed but never declared — detection path untested")
	}
	st := adminStatus(t, seed)
	if st.Liveness == nil || st.Liveness.ProbesSent == 0 {
		t.Errorf("/status liveness counters dead after crash: %+v", st.Liveness)
	}
}

// adminStatus fetches and decodes GET /status from the node's handler.
func adminStatus(t *testing.T, n *Node) statusResponse {
	t.Helper()
	srv := httptest.NewServer(n.AdminHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}
